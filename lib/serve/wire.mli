(** Minimal JSON values for the serve protocol.

    The toolchain ships no JSON library, so the protocol carries its own
    reader/printer, in the spirit of the hand-written readers used by the
    obs validator and the bench harness.  The subset is exactly what the
    protocol needs: objects, arrays, strings, booleans, null, and numbers
    (integers kept exact, anything else as float).  The printer emits no
    insignificant whitespace and escapes control characters, so a printed
    value always survives the frame layer byte-transparently. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string

val parse : string -> (t, string) result
(** Strict parse of one JSON document; trailing non-whitespace, unknown
    escapes, unterminated literals and out-of-range nesting are errors.
    Never raises. *)

(** {1 Accessors}

    All return [None] (or the [~default]) on shape mismatch — protocol
    decoding treats a missing and a mistyped field identically. *)

val member : string -> t -> t option
(** Field lookup on an [Obj]; [None] on any other constructor. *)

val to_str : t -> string option

val to_int : t -> int option

val to_float : t -> float option
(** Accepts [Int] too (promoted). *)

val to_bool : t -> bool option

val to_list : t -> t list option

val str_field : ?default:string -> string -> t -> string option

val int_field : ?default:int -> string -> t -> int option

val float_field : ?default:float -> string -> t -> float option

val bool_field : ?default:bool -> string -> t -> bool option

val equal : t -> t -> bool
(** Structural equality with object fields compared order-sensitively
    (the printer is deterministic, so roundtrip tests can use this). *)

type t = { fd : Unix.file_descr; dec : Frame.Decoder.t }

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX path) with
  | () -> Ok { fd; dec = Frame.Decoder.create () }
  | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error (Printf.sprintf "cannot connect to %s: %s" path (Unix.error_message e))

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let send t req =
  match Frame.write t.fd (Protocol.request_to_json req) with
  | () -> Ok ()
  | exception Sys_error e -> Error e
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

let recv t =
  match Frame.read t.dec t.fd with
  | Error e -> Error e
  | Ok payload -> Protocol.response_of_json payload

let request t req =
  match send t req with Error e -> Error e | Ok () -> recv t

(* Stream until the job's terminal frame: events are forwarded, the
   result ends the wait, a daemon-side rejection becomes [Error]. *)
let wait_result ?(on_event = fun ~job:_ ~stream:_ ~data:_ -> ()) t =
  let rec go () =
    match recv t with
    | Error e -> Error e
    | Ok (Protocol.Event { job; stream; data }) ->
        on_event ~job ~stream ~data;
        go ()
    | Ok (Protocol.Telemetry _) -> go ()
    | Ok (Protocol.Accepted _) -> go ()
    | Ok (Protocol.Result p) -> Ok p
    | Ok (Protocol.Error_msg m) -> Error m
    | Ok _ -> Error "unexpected response while awaiting a job result"
  in
  go ()

let submit_and_wait ?on_event t sub =
  match send t (Protocol.Submit sub) with
  | Error e -> Error e
  | Ok () -> wait_result ?on_event t

let await ?on_event t id =
  match send t (Protocol.Await id) with
  | Error e -> Error e
  | Ok () -> wait_result ?on_event t

let subscribe_telemetry t s =
  match request t (Protocol.Telemetry_sub s) with
  | Error e -> Error e
  | Ok Protocol.Ok_resp -> Ok ()
  | Ok (Protocol.Error_msg m) -> Error m
  | Ok _ -> Error "unexpected response to telemetry subscription"

(* Dedicated telemetry connections see only Telemetry frames after the
   subscription ack; anything else interleaved is skipped, not an error. *)
let next_telemetry t =
  let rec go () =
    match recv t with
    | Error e -> Error e
    | Ok (Protocol.Telemetry { stream; data }) -> Ok (stream, data)
    | Ok (Protocol.Error_msg m) -> Error m
    | Ok _ -> go ()
  in
  go ()

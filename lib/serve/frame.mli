(** Length-framed, checksummed protocol frames.

    Every protocol message travels as one frame:

    {v
      4 bytes   magic "DFS1"
      4 bytes   payload length, u32le (0 < len <= max_payload)
      len bytes payload (a JSON document, but the frame layer is opaque)
      8 bytes   checksum, u64le — Hash64.of_string of the payload
    v}

    The decoder is incremental: bytes arrive in arbitrary chunks (the
    daemon reads whatever [select] offers) and complete frames are pulled
    out as they materialize.  Any violation — bad magic, zero/oversized
    length, checksum mismatch — is terminal for the connection: the
    decoder latches the error and refuses further input, which is how
    "fail closed" is enforced at the lowest layer.

    Writes pass the [serve.conn] {!Dfm_util.Failpoint} site.  [Io_error]
    injects a failed send (a dropped connection), [Partial_write] writes a
    torn prefix of the frame and then fails — the crash-matrix-style serve
    tests use both to prove that a connection dying mid-frame never
    corrupts daemon state and is always detected by the peer's decoder. *)

val max_payload : int
(** Upper bound on one payload (64 MiB — netlists travel inline). *)

val encode : string -> string
(** The full frame bytes for one payload.
    @raise Invalid_argument when the payload is empty or oversized. *)

val write : Unix.file_descr -> string -> unit
(** [write fd payload] sends one frame with {!Unix.write}, retrying short
    writes.  Passes the [serve.conn] failpoint.  Raises [Sys_error] /
    [Unix.Unix_error] on a dead peer. *)

(** {1 Incremental decoding} *)

module Decoder : sig
  type t

  val create : unit -> t

  val feed : t -> bytes -> int -> unit
  (** [feed t buf n] appends the first [n] bytes of [buf]. *)

  val next : t -> (string option, string) result
  (** The next complete payload; [Ok None] when more bytes are needed.
      [Error] reports the first protocol violation; once returned, every
      further call returns the same error and fed bytes are discarded. *)

  val buffered : t -> int
  (** Bytes held but not yet consumed as frames. *)
end

val read : Decoder.t -> Unix.file_descr -> (string, string) result
(** Blocking read of the next frame through a persistent per-connection
    decoder (bytes beyond the frame stay buffered for the next call);
    [Error] describes a protocol violation or a closed connection.  Used
    by the synchronous client. *)

(** Synchronous client for the campaign service.

    One connection, blocking request/response.  Streamed [Event] frames
    arriving while waiting for a submitted job's result are handed to the
    [on_event] callback in arrival order. *)

type t

val connect : string -> (t, string) result
(** Connect to the daemon's Unix-domain socket. *)

val close : t -> unit

val request : t -> Protocol.request -> (Protocol.response, string) result
(** Send one request, return the first response frame.  [Error] is a
    transport or protocol-framing failure (not a daemon [Error_msg] —
    that arrives as [Ok (Error_msg _)]). *)

val submit_and_wait :
  ?on_event:(job:string -> stream:string -> data:string -> unit) ->
  t ->
  Protocol.submit ->
  (Protocol.result_payload, string) result
(** Submit a job and block until its [Result] frame, forwarding events.
    A daemon-side rejection ([Error_msg]) is returned as [Error]. *)

val await :
  ?on_event:(job:string -> stream:string -> data:string -> unit) ->
  t ->
  string ->
  (Protocol.result_payload, string) result
(** Re-attach to a job by id (possibly submitted before a daemon restart)
    and block until its result. *)

val subscribe_telemetry : t -> Protocol.telemetry_sub -> (unit, string) result
(** Turn this connection into a telemetry stream: the daemon acks, then
    sends droppable [Telemetry] frames matching the subscription. *)

val next_telemetry : t -> (string * string, string) result
(** Block until the next [Telemetry] frame, returning [(stream, data)].
    Other frame kinds arriving on this connection are skipped. *)

(** The serve protocol: typed requests and responses, carried as JSON
    payloads over {!Frame}s.

    One request per frame, client to daemon; the daemon answers with one
    or more response frames.  A [Submit] is acknowledged with [Accepted]
    and the submitting connection is subscribed to the job: it then
    receives streamed [Event]s (campaign log lines, progress updates) and
    finally exactly one [Result].  [Await] re-subscribes any connection to
    a job by id — including a job resumed by a restarted daemon, whose
    original connection died with the previous process.

    Decoding is total: a frame that parses as JSON but does not shape up
    as a known message yields [Error _], and the daemon answers it with a
    protocol error and closes the connection (fail closed, same policy as
    the frame layer). *)

type job_kind = Analyze | Resynth | Lint

val kind_to_string : job_kind -> string

val kind_of_string : string -> job_kind option

(** Per-job limits, enforced by the scheduler/executor.  [jobs] caps the
    worker domains the job may occupy on the shared pool; [max_conflicts]
    bounds each SAT query (with the escalation ladder, as on the CLI);
    [max_seconds] cancels a running resynthesis campaign at its next
    design-point boundary (the per-job checkpoint keeps it resumable). *)
type limits = {
  jobs : int option;
  max_conflicts : int option;
  max_seconds : float option;
}

val no_limits : limits

type submit = {
  client : string;       (** tenant identity for fair-share + accounting *)
  kind : job_kind;
  name : string;         (** display/report label, e.g. the circuit name *)
  netlist : string;      (** netlist text ({!Dfm_netlist.Netlist_io} format) *)
  limits : limits;
  static_filter : bool;
  sat_mode : string option;  (** "incremental" | "oneshot" | None = default *)
  q_max : int option;        (** resynth only *)
  p1 : float option;         (** resynth only *)
}

(** A telemetry subscription (connection-scoped): the connection starts
    receiving droppable [Telemetry] frames — span batches as they drain
    when [t_spans], periodic metrics snapshots when [t_metrics].
    [t_families] filters metric families by name prefix ([[]] = all);
    [t_interval_ms] paces the metrics frames (default 1000, clamped to a
    daemon-side floor).  Telemetry frames never block job results: under
    backpressure they are dropped and counted in
    [dfm_serve_telemetry_dropped_total]. *)
type telemetry_sub = {
  t_spans : bool;
  t_metrics : bool;
  t_families : string list;
  t_interval_ms : int option;
}

type request =
  | Submit of submit
  | Status of string option  (** all jobs, or one job id *)
  | Await of string
  | Cancel of string
  | Drain
  | Metrics
  | Telemetry_sub of telemetry_sub
  | Dump  (** write a flight-recorder dump under the daemon state dir *)
  | Ping

type job_state = Pending | Running | Done | Failed | Cancelled

val state_to_string : job_state -> string

type job_view = {
  jv_id : string;
  jv_client : string;
  jv_kind : job_kind;
  jv_name : string;
  jv_state : job_state;
  jv_detail : string;        (** outcome / failure text, "" while live *)
}

type client_view = {
  cv_client : string;
  cv_jobs : int;             (** jobs completed *)
  cv_service_s : float;      (** executor seconds consumed *)
  cv_cache_hits : int;       (** verdict-store hits attributed to this client *)
  cv_cache_misses : int;
}

type result_payload = {
  r_job : string;
  r_outcome : string;        (** "done" | "failed" | "cancelled" | "timeout" *)
  r_report : string;
      (** the deterministic report text — for [Analyze], byte-identical to
          the one-shot CLI's [--report] output for the same inputs *)
  r_sat_queries : int;
  r_cache_hits : int;
  r_accepted : int;          (** resynth: accepted steps; 0 otherwise *)
  r_netlist : string option; (** resynth: final netlist text *)
}

type response =
  | Accepted of { job : string; position : int }
  | Event of { job : string; stream : string; data : string }
  | Telemetry of { stream : string; data : string }
      (** Droppable, connection-scoped: [stream] is ["spans"] (NDJSON of
          Chrome "X" complete events, one per line) or ["metrics"]
          (Prometheus text exposition of the subscribed families). *)
  | Result of result_payload
  | Status_report of { draining : bool; jobs : job_view list; clients : client_view list }
  | Metrics_text of string   (** live Prometheus exposition *)
  | Drained of { completed : int }
  | Dumped of { trace : string; text : string }
      (** Flight-recorder dump written; daemon-side artifact paths. *)
  | Ok_resp
  | Pong
  | Error_msg of string

val request_to_json : request -> string

val request_of_json : string -> (request, string) result

val response_to_json : response -> string

val response_of_json : string -> (response, string) result

(** Fair-share job scheduling across tenants.

    Pure bookkeeping, no threads: the daemon drives it under its own
    mutex.  Each client owns a FIFO of pending jobs; the scheduler keeps a
    running total of executor seconds each client has consumed, and
    [take] dispatches the head job of the client with the least
    accumulated service.  Ties break on submission order (earlier global
    sequence number first), so dispatch is deterministic given the same
    submission history — a property the fairness tests rely on.

    A fresh client starts not at zero service but at the minimum service
    among live clients, so a newcomer is served next without being owed
    the whole history of the daemon's uptime (standard start-time
    fair-queuing virtual-time trick). *)

type 'a t

val create : unit -> 'a t

val submit : 'a t -> client:string -> 'a -> int
(** Enqueue a job for [client]; returns the queue position among all
    pending jobs (0 = will be dispatched next). *)

val take : 'a t -> (string * 'a) option
(** Pop the next job to run: head of the least-served client's FIFO.
    Returns the owning client with the job. *)

val charge : 'a t -> client:string -> float -> unit
(** Add [seconds] of executor service to [client]'s account.  Unknown
    clients are created on the fly (restart replay charges clients whose
    queues are empty). *)

val remove : 'a t -> ('a -> bool) -> 'a option
(** Remove and return the first pending job matching the predicate
    (cancellation of a queued job).  [None] when nothing matches. *)

val pending : 'a t -> int
(** Total queued jobs across all clients. *)

val position : 'a t -> ('a -> bool) -> int option
(** Dispatch-order position of the first matching pending job
    (0 = next), computed against current service accounts. *)

val service : 'a t -> client:string -> float
(** Accumulated service seconds for [client]; 0 if unknown. *)

val clients : 'a t -> string list
(** All clients ever seen, in first-submission order. *)

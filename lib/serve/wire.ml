type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printer                                                              *)
(* ------------------------------------------------------------------ *)

let escape_into buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let rec print_into buf v =
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      (* %.17g roundtrips every finite float; NaN/inf have no JSON
         spelling, so they degrade to null rather than emit an
         unparseable token. *)
      if Float.is_nan f || not (Float.is_finite f) then Buffer.add_string buf "null"
      else Buffer.add_string buf (Printf.sprintf "%.17g" f)
  | String s ->
      Buffer.add_char buf '"';
      escape_into buf s;
      Buffer.add_char buf '"'
  | List l ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          print_into buf x)
        l;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, x) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape_into buf k;
          Buffer.add_string buf "\":";
          print_into buf x)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  print_into buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parser                                                               *)
(* ------------------------------------------------------------------ *)

exception Bad of string

let max_depth = 64

type cursor = { s : string; mutable pos : int }

let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let fail c msg = raise (Bad (Printf.sprintf "%s at byte %d" msg c.pos))

let skip_ws c =
  let continue_ = ref true in
  while !continue_ do
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') -> advance c
    | Some _ | None -> continue_ := false
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> fail c (Printf.sprintf "expected %c, got %c" ch x)
  | None -> fail c (Printf.sprintf "expected %c, got end of input" ch)

let parse_literal c word v =
  String.iter (fun ch -> expect c ch) word;
  v

let hex_val c ch =
  match ch with
  | '0' .. '9' -> Char.code ch - Char.code '0'
  | 'a' .. 'f' -> Char.code ch - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code ch - Char.code 'A' + 10
  | _ -> fail c "bad hex digit in \\u escape"

(* \uXXXX escapes: BMP code points are emitted as UTF-8; surrogate pairs
   are not reassembled (the printer never produces them — it escapes only
   control bytes). *)
let add_codepoint buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xc0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xe0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
  end

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
        advance c;
        match peek c with
        | None -> fail c "unterminated escape"
        | Some e ->
            advance c;
            (match e with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'u' ->
                let digit () =
                  match peek c with
                  | None -> fail c "truncated \\u escape"
                  | Some ch ->
                      advance c;
                      hex_val c ch
                in
                let cp = ref 0 in
                for _ = 1 to 4 do
                  cp := (!cp lsl 4) lor digit ()
                done;
                add_codepoint buf !cp
            | _ -> fail c "unknown escape");
            go ())
    | Some ch ->
        advance c;
        Buffer.add_char buf ch;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  let continue_ = ref true in
  while !continue_ do
    match peek c with
    | Some ch when is_num_char ch -> advance c
    | Some _ | None -> continue_ := false
  done;
  let text = String.sub c.s start (c.pos - start) in
  if text = "" then fail c "expected a value";
  match int_of_string_opt text with
  | Some i -> Int i
  | None -> (
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail c (Printf.sprintf "bad number %S" text))

let rec parse_value c ~depth =
  if depth > max_depth then fail c "nesting too deep";
  skip_ws c;
  match peek c with
  | None -> fail c "expected a value, got end of input"
  | Some '"' -> String (parse_string c)
  | Some 't' -> parse_literal c "true" (Bool true)
  | Some 'f' -> parse_literal c "false" (Bool false)
  | Some 'n' -> parse_literal c "null" Null
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin
        advance c;
        List []
      end
      else begin
        let items = ref [] in
        let continue_ = ref true in
        while !continue_ do
          items := parse_value c ~depth:(depth + 1) :: !items;
          skip_ws c;
          match peek c with
          | Some ',' -> advance c
          | Some ']' ->
              advance c;
              continue_ := false
          | Some _ | None -> fail c "expected , or ] in array"
        done;
        List (List.rev !items)
      end
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin
        advance c;
        Obj []
      end
      else begin
        let fields = ref [] in
        let continue_ = ref true in
        while !continue_ do
          skip_ws c;
          let k = parse_string c in
          skip_ws c;
          expect c ':';
          let v = parse_value c ~depth:(depth + 1) in
          fields := (k, v) :: !fields;
          skip_ws c;
          match peek c with
          | Some ',' -> advance c
          | Some '}' ->
              advance c;
              continue_ := false
          | Some _ | None -> fail c "expected , or } in object"
        done;
        Obj (List.rev !fields)
      end
  | Some _ -> parse_number c

let parse s =
  let c = { s; pos = 0 } in
  match parse_value c ~depth:0 with
  | v ->
      skip_ws c;
      if c.pos <> String.length s then Error (Printf.sprintf "trailing bytes at %d" c.pos)
      else Ok v
  | exception Bad msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors                                                            *)
(* ------------------------------------------------------------------ *)

let member k v =
  match v with Obj fields -> List.assoc_opt k fields | _ -> None

let to_str = function String s -> Some s | _ -> None

let to_int = function Int i -> Some i | _ -> None

let to_float = function Float f -> Some f | Int i -> Some (float_of_int i) | _ -> None

let to_bool = function Bool b -> Some b | _ -> None

let to_list = function List l -> Some l | _ -> None

let with_default default = function
  | Some _ as s -> s
  | None -> ( match default with Some d -> Some d | None -> None)

let str_field ?default k v = with_default default (Option.bind (member k v) to_str)

let int_field ?default k v = with_default default (Option.bind (member k v) to_int)

let float_field ?default k v = with_default default (Option.bind (member k v) to_float)

let bool_field ?default k v = with_default default (Option.bind (member k v) to_bool)

let equal a b = a = b

type 'a entry = { seq : int; payload : 'a }

type 'a client = {
  name : string;
  queue : 'a entry Queue.t;
  mutable service : float;
}

type 'a t = {
  tbl : (string, 'a client) Hashtbl.t;
  mutable order : string list; (* first-submission order, reversed *)
  mutable next_seq : int;
}

let create () = { tbl = Hashtbl.create 16; order = []; next_seq = 0 }

let min_service t =
  Hashtbl.fold (fun _ c acc -> min acc c.service) t.tbl infinity

let get_client t name =
  match Hashtbl.find_opt t.tbl name with
  | Some c -> c
  | None ->
      let base = match min_service t with s when Float.is_finite s -> s | _ -> 0. in
      let c = { name; queue = Queue.create (); service = base } in
      Hashtbl.add t.tbl name c;
      t.order <- name :: t.order;
      c

let clients t = List.rev t.order

(* The dispatch rule: least accumulated service wins; among equals, the
   client whose head job was submitted first.  Clients with empty queues
   never compete. *)
let pick_client t =
  Hashtbl.fold
    (fun _ c best ->
      match Queue.peek_opt c.queue with
      | None -> best
      | Some head -> (
          match best with
          | None -> Some (c, head.seq)
          | Some (bc, bseq) ->
              if
                c.service < bc.service
                || (c.service = bc.service && head.seq < bseq)
              then Some (c, head.seq)
              else best))
    t.tbl None

let pending t = Hashtbl.fold (fun _ c acc -> acc + Queue.length c.queue) t.tbl 0

(* Projected dispatch order, used only to report queue positions: simulate
   [take] with a unit charge per dispatched job.  Deterministic, and exact
   whenever jobs cost roughly alike. *)
let projected_order t =
  let snap =
    Hashtbl.fold
      (fun _ c acc ->
        if Queue.is_empty c.queue then acc
        else (ref c.service, ref (List.of_seq (Queue.to_seq c.queue))) :: acc)
      t.tbl []
  in
  let order = ref [] in
  let continue_ = ref true in
  while !continue_ do
    let best =
      List.fold_left
        (fun best (service, q) ->
          match !q with
          | [] -> best
          | head :: _ -> (
              match best with
              | None -> Some (service, q, head)
              | Some (bs, _, bh) ->
                  if !service < !bs || (!service = !bs && head.seq < bh.seq) then
                    Some (service, q, head)
                  else best))
        None snap
    in
    match best with
    | None -> continue_ := false
    | Some (service, q, head) ->
        order := head :: !order;
        q := List.tl !q;
        service := !service +. 1.
  done;
  List.rev !order

let submit t ~client payload =
  let c = get_client t client in
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  Queue.add { seq; payload } c.queue;
  let rec index i = function
    | [] -> 0 (* unreachable: the job we just queued is in the order *)
    | e :: rest -> if e.seq = seq then i else index (i + 1) rest
  in
  index 0 (projected_order t)

let take t =
  match pick_client t with
  | None -> None
  | Some (c, _) ->
      let e = Queue.pop c.queue in
      Some (c.name, e.payload)

let charge t ~client seconds =
  let c = get_client t client in
  c.service <- c.service +. seconds

let remove t pred =
  let found = ref None in
  Hashtbl.iter
    (fun _ c ->
      if
        Option.is_none !found
        && Queue.fold (fun acc e -> acc || pred e.payload) false c.queue
      then begin
        let keep = Queue.create () in
        Queue.iter
          (fun e ->
            if Option.is_none !found && pred e.payload then found := Some e.payload
            else Queue.add e keep)
          c.queue;
        Queue.clear c.queue;
        Queue.transfer keep c.queue
      end)
    t.tbl;
  !found

let position t pred =
  let rec index i = function
    | [] -> None
    | e :: rest -> if pred e.payload then Some i else index (i + 1) rest
  in
  index 0 (projected_order t)

let service t ~client =
  match Hashtbl.find_opt t.tbl client with Some c -> c.service | None -> 0.

module Failpoint = Dfm_util.Failpoint
module Hash64 = Dfm_incr.Hash64

let magic = "DFS1"

let header_len = 8 (* magic + u32le length *)

let trailer_len = 8 (* u64le checksum *)

let max_payload = 64 * 1024 * 1024

let checksum payload = Hash64.of_string payload

let put_u32le b off v =
  Bytes.set b off (Char.chr (v land 0xff));
  Bytes.set b (off + 1) (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b (off + 2) (Char.chr ((v lsr 16) land 0xff));
  Bytes.set b (off + 3) (Char.chr ((v lsr 24) land 0xff))

let get_u32le s off =
  Char.code s.[off]
  lor (Char.code s.[off + 1] lsl 8)
  lor (Char.code s.[off + 2] lsl 16)
  lor (Char.code s.[off + 3] lsl 24)

let put_u64le b off v =
  for i = 0 to 7 do
    Bytes.set b (off + i)
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xffL)))
  done

let get_u64le s off =
  let v = ref 0L in
  for i = 7 downto 0 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code s.[off + i]))
  done;
  !v

let encode payload =
  let len = String.length payload in
  if len = 0 then invalid_arg "Frame.encode: empty payload";
  if len > max_payload then invalid_arg "Frame.encode: payload too large";
  let b = Bytes.create (header_len + len + trailer_len) in
  Bytes.blit_string magic 0 b 0 4;
  put_u32le b 4 len;
  Bytes.blit_string payload 0 b header_len len;
  put_u64le b (header_len + len) (checksum payload);
  Bytes.unsafe_to_string b

let write_all fd s pos len =
  let pos = ref pos and len = ref len in
  while !len > 0 do
    let n = Unix.write_substring fd s !pos !len in
    pos := !pos + n;
    len := !len - n
  done

(* The [serve.conn] site: a dropped connection is an [Io_error]; a torn
   frame is a [Partial_write] that sends a strict prefix (half the frame,
   at least one byte) before failing, so the peer's decoder sees exactly
   what a connection dying mid-send leaves behind. *)
let write fd payload =
  let frame = encode payload in
  match Failpoint.check "serve.conn" with
  | Some Failpoint.Raise -> raise (Failpoint.Injected "serve.conn")
  | Some Failpoint.Io_error -> raise (Sys_error "serve.conn: injected connection drop")
  | Some Failpoint.Partial_write ->
      let torn = max 1 (String.length frame / 2) in
      write_all fd frame 0 torn;
      raise (Sys_error "serve.conn: injected torn frame write")
  | Some (Failpoint.Delay s) ->
      Unix.sleepf s;
      write_all fd frame 0 (String.length frame)
  | None -> write_all fd frame 0 (String.length frame)

(* ------------------------------------------------------------------ *)
(* Incremental decoder                                                  *)
(* ------------------------------------------------------------------ *)

module Decoder = struct
  type t = {
    buf : Buffer.t;
    mutable consumed : int; (* prefix of [buf] already turned into frames *)
    mutable failed : string option;
  }

  let create () = { buf = Buffer.create 4096; consumed = 0; failed = None }

  let buffered t = Buffer.length t.buf - t.consumed

  let feed t bytes n =
    match t.failed with
    | Some _ -> () (* fail closed: a poisoned connection accepts nothing *)
    | None -> Buffer.add_subbytes t.buf bytes 0 n

  (* Compact once the consumed prefix dominates, so a long-lived
     connection does not grow its buffer without bound. *)
  let compact t =
    if t.consumed > 65536 && t.consumed * 2 > Buffer.length t.buf then begin
      let rest = Buffer.sub t.buf t.consumed (buffered t) in
      Buffer.clear t.buf;
      Buffer.add_string t.buf rest;
      t.consumed <- 0
    end

  let fail t msg =
    t.failed <- Some msg;
    Buffer.clear t.buf;
    t.consumed <- 0;
    Error msg

  let next t =
    match t.failed with
    | Some msg -> Error msg
    | None ->
        let avail = buffered t in
        if avail < header_len then Ok None
        else begin
          let contents = Buffer.contents t.buf in
          let off = t.consumed in
          if String.sub contents off 4 <> magic then
            fail t "protocol error: bad frame magic"
          else begin
            let len = get_u32le contents (off + 4) in
            if len <= 0 || len > max_payload then
              fail t (Printf.sprintf "protocol error: bad frame length %d" len)
            else if avail < header_len + len + trailer_len then Ok None
            else begin
              let payload = String.sub contents (off + header_len) len in
              let expected = get_u64le contents (off + header_len + len) in
              if not (Int64.equal (checksum payload) expected) then
                fail t "protocol error: frame checksum mismatch"
              else begin
                t.consumed <- off + header_len + len + trailer_len;
                compact t;
                Ok (Some payload)
              end
            end
          end
        end
end

(* Blocking next-frame read for the synchronous client; the decoder is
   per-connection so bytes past the returned frame survive the call. *)
let read dec fd =
  let chunk = Bytes.create 65536 in
  let rec go () =
    match Decoder.next dec with
    | Error e -> Error e
    | Ok (Some payload) -> Ok payload
    | Ok None -> (
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 ->
            if Decoder.buffered dec = 0 then Error "connection closed"
            else Error "connection closed mid-frame"
        | n ->
            Decoder.feed dec chunk n;
            go ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ())
  in
  go ()

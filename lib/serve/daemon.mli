(** The campaign service: a long-running daemon accepting concurrent
    analyze / resynth / lint jobs from multiple clients over a
    Unix-domain socket.

    Architecture (two threads, one worker pool):

    - The {b network thread} (the caller of {!run}) owns the listening
      socket and every connection: a [select] loop reads framed requests,
      flushes buffered responses to writable sockets, and accepts new
      clients.  It never runs engine code, so the daemon stays responsive
      while a campaign grinds.
    - The {b executor thread} runs jobs strictly one at a time — the
      engines' coordinator state (verdict cache consultation, incremental
      SAT sessions) is single-domain by design, so concurrency between
      jobs lives in the {e queue}, not in the engines.  Each job's
      classification still fans out over the shared {!Dfm_util.Parallel}
      pool, capped by the job's [jobs] limit; {!Dfm_util.Parallel.set_pool_floor}
      keeps that pool alive across jobs with different caps.
    - Fair-share ordering between clients is {!Scheduler}'s: the pending
      job of the least-served client runs next.

    One verdict {!Dfm_incr.Cache} (backed by [<state>/cache/]) serves
    every job of every client; per-client hit/miss deltas are accounted
    around each job.  A second tenant analyzing the same block gets the
    first tenant's verdicts for free — the cross-campaign cache-hit
    assertion in the serve smoke test.

    Durability: every accepted submit and every completion is appended to
    [<state>/ledger.bin] as a {!Frame}-framed JSON record, and each
    resynth job journals accepted design points to
    [<state>/jobs/<id>/campaign.ckpt].  A daemon killed mid-campaign and
    restarted on the same state dir re-enqueues the incomplete jobs and
    resumes each resynth from its journal — same accepted ECO chain, same
    final result, as the kill/restart test proves.

    Determinism: a job's report is byte-identical to the equivalent
    one-shot CLI run ([analyze --report], at any [jobs] value), because
    both sides call the same {!Dfm_core.Report} builders on the same
    engine results and sharding derives from the job's [jobs] parameter,
    never from pool width. *)

type config = {
  socket_path : string;
  state_dir : string;   (** ledger, shared verdict cache, per-job journals *)
  jobs : int;           (** pool floor and default per-job worker cap *)
  certify : bool;
      (** run every job certified: verdicts verified against independent
          certificates ({!Dfm_core.Design.implement}), ECOs against checked
          equivalence proofs ({!Dfm_core.Resynth.run}), cache hits against
          their stored marks.  Reports stay byte-identical to uncertified
          runs; a failed check fails that one job, never the daemon *)
}

exception Startup_error of string
(** Raised by {!run} before serving begins: another daemon owns the
    socket, the state dir cannot be created, the ledger is unopenable.
    The CLI maps it to exit 2. *)

val run : ?on_ready:(unit -> unit) -> config -> int
(** Serve until a [drain] request completes the queue.  [on_ready] fires
    once the socket is listening (the in-process bench uses it).  Returns
    the number of jobs completed over the daemon's lifetime.

    Resource exhaustion: an [accept] failing with EMFILE/ENFILE (chaos-
    injectable via the [serve.accept_emfile] failpoint) never exits the
    daemon — it sheds the oldest idle event-stream connection (the job
    result stays awaitable by id) and pauses accepting for a bounded
    exponentially growing backoff (50ms … 1s), counted on
    [dfm_serve_accept_backoffs_total] / [dfm_serve_conns_shed_total]. *)

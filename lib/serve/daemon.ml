module P = Protocol
module Design = Dfm_core.Design
module Resynth = Dfm_core.Resynth
module Report = Dfm_core.Report
module Metrics = Dfm_obs.Metrics
module Log = Dfm_obs.Log

type config = { socket_path : string; state_dir : string; jobs : int; certify : bool }

exception Startup_error of string

exception Cancelled_job

exception Timed_out_job

(* Daemon-level metrics: served live to any client via the [metrics]
   request, alongside everything the engines record. *)
let m_jobs =
  Metrics.counter ~help:"Jobs completed by the serve daemon" "dfm_serve_jobs_total"

let m_dropped_events =
  Metrics.counter ~help:"Streamed event frames dropped to slow clients"
    "dfm_serve_events_dropped_total"

let m_queue_depth = Metrics.gauge ~help:"Jobs queued in the serve daemon" "dfm_serve_queue_depth"

let m_connections = Metrics.gauge ~help:"Open serve connections" "dfm_serve_connections"

let m_queue_wait =
  Metrics.histogram ~help:"Queue wait per job, milliseconds" "dfm_serve_queue_wait_ms"

let m_accept_backoffs =
  Metrics.counter ~help:"Accept attempts deferred on fd exhaustion (EMFILE/ENFILE)"
    "dfm_serve_accept_backoffs_total"

let m_conns_shed =
  Metrics.counter ~help:"Idle event-stream connections shed to free descriptors"
    "dfm_serve_conns_shed_total"

let m_telemetry_dropped =
  Metrics.counter ~help:"Telemetry frames dropped to slow subscribers"
    "dfm_serve_telemetry_dropped_total"

(* A slow reader may lag; events are droppable once its buffer passes this,
   result frames never are. *)
let max_buffered_events = 1 lsl 20

type conn = {
  fd : Unix.file_descr;
  created : float;            (* accept time: shedding targets the oldest *)
  dec : Frame.Decoder.t;
  outq : string Queue.t;      (* encoded frames awaiting the socket *)
  mutable out_off : int;      (* progress into the head of [outq] *)
  mutable out_bytes : int;
  mutable close_after_flush : bool;
  mutable dead : bool;
  mutable telemetry : P.telemetry_sub option;
  mutable next_metrics_at : float;  (* next paced metrics frame for this sub *)
}

type job = {
  id : string;
  sub : P.submit;
  resume : bool;  (* restart re-attach: continue from the job's journal *)
  submitted : float;
  mutable state : P.job_state;
  mutable detail : string;
  mutable result : P.result_payload option;
  mutable cancel : bool;
  mutable started : float;
  mutable watchers : conn list;
}

type account = {
  mutable a_jobs : int;
  mutable a_service : float;
  mutable a_hits : int;
  mutable a_misses : int;
}

type t = {
  cfg : config;
  mu : Mutex.t;
  cond : Condition.t;         (* executor wakeup *)
  listen_fd : Unix.file_descr;
  wake_r : Unix.file_descr;   (* self-pipe: executor -> select loop *)
  wake_w : Unix.file_descr;
  conns : (Unix.file_descr, conn) Hashtbl.t;
  jobs : (string, job) Hashtbl.t;
  mutable job_order : string list;  (* reversed insertion order *)
  sched : string Scheduler.t;
  accounts : (string, account) Hashtbl.t;
  mutable account_order : string list;  (* reversed *)
  cache : Dfm_incr.Cache.t;
  ledger : out_channel;
  mutable next_id : int;
  mutable running : job option;
  mutable accept_backoff : float;     (* current EMFILE backoff, 0 = healthy *)
  mutable accept_resume_at : float;   (* listen_fd rejoins select after this *)
  mutable draining : bool;
  mutable drain_watchers : conn list;
  mutable shutdown : bool;
  mutable completed : int;
  mutable next_span_pump : float;  (* pacing for the shared span drain *)
  spans_at_start : bool;  (* span collection already on before we arbitrate it *)
}

(* SIGUSR2 asks a live daemon for a flight-recorder dump; the handler only
   raises a flag the select loop polls, everything else is async-unsafe. *)
let sigusr2_dump = Atomic.make false

let now () = Unix.gettimeofday ()

let account d client =
  match Hashtbl.find_opt d.accounts client with
  | Some a -> a
  | None ->
      let a = { a_jobs = 0; a_service = 0.; a_hits = 0; a_misses = 0 } in
      Hashtbl.add d.accounts client a;
      d.account_order <- client :: d.account_order;
      a

let wake d =
  try ignore (Unix.write d.wake_w (Bytes.make 1 '!') 0 1)
  with Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EPIPE), _, _) -> ()

(* ---- outgoing frames (mu held) ---------------------------------------- *)

let enqueue d conn resp =
  let frame = Frame.encode (P.response_to_json resp) in
  Queue.add frame conn.outq;
  conn.out_bytes <- conn.out_bytes + String.length frame;
  wake d

let post ?(droppable = false) d conn resp =
  if not conn.dead then begin
    if droppable && conn.out_bytes > max_buffered_events then
      Metrics.incr m_dropped_events
    else enqueue d conn resp
  end

(* Telemetry frames are always droppable: results and protocol replies win
   the buffer, telemetry yields and the drop is counted. *)
let post_telemetry d conn resp =
  if not conn.dead then begin
    if conn.out_bytes > max_buffered_events then Metrics.incr m_telemetry_dropped
    else enqueue d conn resp
  end

(* Span collection costs a little per span, so the daemon turns it on only
   while someone is subscribed — unless it was already on (CLI --timing),
   which the daemon never overrides. *)
let refresh_span_collection d =
  let wanted =
    Hashtbl.fold
      (fun _ c acc ->
        acc
        || match c.telemetry with Some s -> (not c.dead) && s.P.t_spans | None -> false)
      d.conns false
  in
  Dfm_obs.Span.set_enabled (d.spans_at_start || wanted)

let flight_dir d = Filename.concat d.cfg.state_dir "flightrec"

(* Logs on both paths, so never call while holding [mu] (the obs router's
   log sink takes it). *)
let flight_dump_logged d ~reason =
  match Dfm_obs.Recorder.dump ~dir:(flight_dir d) ~reason with
  | Ok (trace, _) ->
      Log.warn (Printf.sprintf "serve: flight recorder dump (%s) -> %s" reason trace)
  | Error e ->
      Log.error (Printf.sprintf "serve: flight recorder dump failed (%s): %s" reason e)

let post_watchers ?droppable d job resp =
  job.watchers <- List.filter (fun c -> not c.dead) job.watchers;
  List.iter (fun c -> post ?droppable d c resp) job.watchers

(* ---- ledger ------------------------------------------------------------ *)

(* Each record is one frame whose payload wraps a protocol message, so
   replay reuses the protocol decoders and a torn tail from a kill lands on
   the frame layer's checksum, exactly like a torn socket write. *)
let ledger_append d (v : Wire.t) =
  try
    output_string d.ledger (Frame.encode (Wire.to_string v));
    flush d.ledger
  with Sys_error e -> Log.error (Printf.sprintf "serve: ledger append failed: %s" e)

let ledger_submit d (j : job) =
  ledger_append d
    (Wire.Obj
       [
         ("rec", Wire.String "submit");
         ("job", Wire.String j.id);
         ("sub", Wire.String (P.request_to_json (P.Submit j.sub)));
       ])

let ledger_done d (j : job) (p : P.result_payload) =
  ledger_append d
    (Wire.Obj
       [
         ("rec", Wire.String "done");
         ("job", Wire.String j.id);
         ("res", Wire.String (P.response_to_json (P.Result p)));
       ])

(* ---- job lifecycle (mu held unless noted) ------------------------------ *)

let job_ckpt_dir d id = Filename.concat (Filename.concat d.cfg.state_dir "jobs") id

let register_job d (j : job) =
  Hashtbl.add d.jobs j.id j;
  d.job_order <- j.id :: d.job_order

let finish_drain_if_idle d =
  if d.draining && d.running = None && Scheduler.pending d.sched = 0 then begin
    List.iter
      (fun c -> if not c.dead then post d c (P.Drained { completed = d.completed }))
      d.drain_watchers;
    d.drain_watchers <- [];
    d.shutdown <- true;
    Condition.broadcast d.cond;
    wake d
  end

let complete_job d (j : job) (p : P.result_payload) ~service =
  j.state <-
    (match p.P.r_outcome with
    | "done" -> P.Done
    | "cancelled" -> P.Cancelled
    | "timeout" -> P.Failed
    | _ -> P.Failed);
  j.detail <- (if p.P.r_outcome = "done" then "" else p.P.r_outcome);
  j.result <- Some p;
  Scheduler.charge d.sched ~client:j.sub.P.client service;
  let a = account d j.sub.P.client in
  a.a_jobs <- a.a_jobs + 1;
  a.a_service <- a.a_service +. service;
  d.completed <- d.completed + 1;
  Metrics.incr m_jobs;
  ledger_done d j p;
  post_watchers d j (P.Result p);
  j.watchers <- [];
  finish_drain_if_idle d;
  wake d

(* ---- the executor thread ----------------------------------------------- *)

let sat_mode_of_string = function
  | Some "incremental" -> Ok (Some Dfm_atpg.Atpg.Incremental)
  | Some "oneshot" -> Ok (Some Dfm_atpg.Atpg.Oneshot)
  | Some other -> Error (Printf.sprintf "unknown sat mode %S" other)
  | None -> Ok None

(* Runs without [mu]: everything here is engine work on state only this
   thread touches.  The verdict-cache stats deltas around the run are the
   per-client attribution. *)
let execute d (j : job) =
  let sub = j.sub in
  (* One span per job: streamed traces and flight dumps tie every engine
     span below to the owning job, and any exceptional unwind crosses at
     least this frame, so a failure stack is always captured. *)
  Dfm_obs.Span.with_ "serve.job" ~attrs:[ ("job", j.id); ("tenant", sub.P.client) ]
  @@ fun () ->
  let cap = match sub.P.limits.P.jobs with Some n -> n | None -> d.cfg.jobs in
  Dfm_util.Parallel.set_default_jobs cap;
  let max_conflicts = sub.P.limits.P.max_conflicts in
  let escalation = Option.map (fun _ -> Dfm_atpg.Atpg.default_escalation) max_conflicts in
  let deadline = Option.map (fun s -> j.started +. s) sub.P.limits.P.max_seconds in
  let interrupt () =
    if j.cancel then raise Cancelled_job;
    match deadline with Some t when now () > t -> raise Timed_out_job | _ -> ()
  in
  let sat_mode =
    match sat_mode_of_string sub.P.sat_mode with
    | Ok (Some m) -> m
    | Ok None -> Dfm_atpg.Atpg.default_sat_mode ()
    | Error e -> failwith e
  in
  let nl =
    Dfm_netlist.Netlist_io.read ~library:Dfm_cellmodel.Osu018.library sub.P.netlist
  in
  let cache = d.cache in
  match sub.P.kind with
  | P.Analyze ->
      let static_filter = sub.P.static_filter in
      let dsg =
        Design.implement ~cache ~jobs:cap ?max_conflicts ?escalation ~static_filter
          ~sat_mode ~certify:d.cfg.certify nl
      in
      {
        P.r_job = j.id;
        r_outcome = "done";
        r_report = Report.analyze_report ~name:sub.P.name dsg;
        r_sat_queries = 0;
        r_cache_hits = 0;  (* attributed below from the store deltas *)
        r_accepted = 0;
        r_netlist = None;
      }
  | P.Lint ->
      let rep = Dfm_lint.Lint.check nl in
      let text = Format.asprintf "%a" Dfm_lint.Lint.pp_text rep in
      {
        P.r_job = j.id;
        r_outcome = "done";
        r_report = text;
        r_sat_queries = 0;
        r_cache_hits = 0;
        r_accepted = 0;
        r_netlist = None;
      }
  | P.Resynth ->
      let dir = job_ckpt_dir d j.id in
      (try if not (Sys.file_exists dir) then Sys.mkdir dir 0o755 with Sys_error _ -> ());
      let path = Filename.concat dir "campaign.ckpt" in
      let checkpoint = { Resynth.path; resume = j.resume && Sys.file_exists path } in
      let q_max = match sub.P.q_max with Some q -> q | None -> 5 in
      let p1_percent = match sub.P.p1 with Some p -> p | None -> 1.0 in
      let d0 =
        Design.implement ~cache ?max_conflicts ?escalation ~sat_mode
          ~certify:d.cfg.certify nl
      in
      interrupt ();
      let r =
        Resynth.run ~p1_percent ~q_max ~cache ?max_conflicts ?escalation ~sat_mode
          ~certify:d.cfg.certify ~checkpoint ~interrupt d0
      in
      {
        P.r_job = j.id;
        r_outcome = "done";
        r_report = Report.resynth_report ~name:sub.P.name r;
        r_sat_queries = r.Resynth.sat_queries;
        r_cache_hits = r.Resynth.cache_hits;
        r_accepted = r.Resynth.accepted;
        r_netlist = Some (Dfm_netlist.Netlist_io.to_string r.Resynth.final.Design.netlist);
      }

let failed_payload (j : job) outcome detail =
  {
    P.r_job = j.id;
    r_outcome = outcome;
    r_report = detail;
    r_sat_queries = 0;
    r_cache_hits = 0;
    r_accepted = 0;
    r_netlist = None;
  }

let exec_one d (j : job) =
  let t0 = now () in
  Metrics.observe m_queue_wait (int_of_float ((t0 -. j.submitted) *. 1000.));
  let stats0 = Dfm_incr.Cache.stats d.cache in
  (* Ambient attribution: the executor is single-lane, so every engine
     counter bumped between here and the clear belongs to this tenant/job. *)
  Metrics.set_attribution [ ("tenant", j.sub.P.client); ("job", j.id) ];
  let payload =
    match execute d j with
    | p -> p
    | exception Cancelled_job -> failed_payload j "cancelled" "cancelled by request"
    | exception Timed_out_job ->
        failed_payload j "timeout" "wall-clock limit reached (journal kept; resubmit resumes)"
    | exception Dfm_sat.Cert.Check_failed msg ->
        failed_payload j "failed" ("certification failed: " ^ msg)
    | exception e -> failed_payload j "failed" (Printexc.to_string e)
  in
  Metrics.set_attribution [];
  if payload.P.r_outcome <> "done" then
    flight_dump_logged d
      ~reason:(Printf.sprintf "job %s %s: %s" j.id payload.P.r_outcome payload.P.r_report);
  let stats1 = Dfm_incr.Cache.stats d.cache in
  let service = now () -. t0 in
  Mutex.protect d.mu @@ fun () ->
  let a = account d j.sub.P.client in
  a.a_hits <- a.a_hits + (stats1.Dfm_incr.Store.hits - stats0.Dfm_incr.Store.hits);
  a.a_misses <- a.a_misses + (stats1.Dfm_incr.Store.misses - stats0.Dfm_incr.Store.misses);
  let payload =
    if payload.P.r_outcome = "done" && payload.P.r_cache_hits = 0 then
      { payload with P.r_cache_hits = stats1.Dfm_incr.Store.hits - stats0.Dfm_incr.Store.hits }
    else payload
  in
  d.running <- None;
  complete_job d j payload ~service

let executor d =
  let rec loop () =
    let next =
      Mutex.protect d.mu @@ fun () ->
      let rec wait () =
        if d.shutdown then None
        else
          match Scheduler.take d.sched with
          | Some (_, id) ->
              let j = Hashtbl.find d.jobs id in
              j.state <- P.Running;
              j.started <- now ();
              d.running <- Some j;
              Metrics.set m_queue_depth (Scheduler.pending d.sched);
              Some j
          | None ->
              Condition.wait d.cond d.mu;
              wait ()
      in
      wait ()
    in
    match next with
    | None -> ()
    | Some j ->
        exec_one d j;
        loop ()
  in
  loop ()

(* ---- request handling (network thread, mu held) ------------------------ *)

let job_views d =
  List.rev_map
    (fun id ->
      let j = Hashtbl.find d.jobs id in
      {
        P.jv_id = j.id;
        jv_client = j.sub.P.client;
        jv_kind = j.sub.P.kind;
        jv_name = j.sub.P.name;
        jv_state = j.state;
        jv_detail = j.detail;
      })
    d.job_order

let client_views d =
  List.rev_map
    (fun client ->
      let a = Hashtbl.find d.accounts client in
      {
        P.cv_client = client;
        cv_jobs = a.a_jobs;
        cv_service_s = a.a_service;
        cv_cache_hits = a.a_hits;
        cv_cache_misses = a.a_misses;
      })
    d.account_order

let fresh_id d =
  let id = Printf.sprintf "J%d" d.next_id in
  d.next_id <- d.next_id + 1;
  id

let handle_submit d conn (sub : P.submit) =
  if d.draining then post d conn (P.Error_msg "daemon is draining; not accepting jobs")
  else
    match sat_mode_of_string sub.P.sat_mode with
    | Error e -> post d conn (P.Error_msg e)
    | Ok _ when (match sub.P.limits.P.jobs with Some n -> n < 1 | None -> false) ->
        post d conn (P.Error_msg "jobs limit must be at least 1")
    | Ok _ ->
        let j =
          {
            id = fresh_id d;
            sub;
            resume = false;
            submitted = now ();
            state = P.Pending;
            detail = "";
            result = None;
            cancel = false;
            started = 0.;
            watchers = [ conn ];
          }
        in
        register_job d j;
        ledger_submit d j;
        let position = Scheduler.submit d.sched ~client:sub.P.client j.id in
        Metrics.set m_queue_depth (Scheduler.pending d.sched);
        post d conn (P.Accepted { job = j.id; position });
        Condition.broadcast d.cond

let handle_request d conn payload =
  match P.request_of_json payload with
  | Error e ->
      post d conn (P.Error_msg (Printf.sprintf "bad request: %s" e));
      conn.close_after_flush <- true
  | Ok (P.Submit sub) -> handle_submit d conn sub
  | Ok (P.Status _) ->
      post d conn
        (P.Status_report
           { draining = d.draining; jobs = job_views d; clients = client_views d })
  | Ok (P.Await id) -> (
      match Hashtbl.find_opt d.jobs id with
      | None -> post d conn (P.Error_msg (Printf.sprintf "unknown job %s" id))
      | Some j -> (
          match j.result with
          | Some p -> post d conn (P.Result p)
          | None -> j.watchers <- conn :: j.watchers))
  | Ok (P.Cancel id) -> (
      match Hashtbl.find_opt d.jobs id with
      | None -> post d conn (P.Error_msg (Printf.sprintf "unknown job %s" id))
      | Some j -> (
          match j.state with
          | P.Pending ->
              ignore (Scheduler.remove d.sched (fun jid -> jid = id) : string option);
              Metrics.set m_queue_depth (Scheduler.pending d.sched);
              complete_job d j (failed_payload j "cancelled" "cancelled while queued")
                ~service:0.;
              post d conn P.Ok_resp
          | P.Running ->
              (* Honoured at the campaign's next design-point boundary;
                 analyze/lint jobs run to completion once started. *)
              j.cancel <- true;
              post d conn P.Ok_resp
          | P.Done | P.Failed | P.Cancelled ->
              post d conn (P.Error_msg (Printf.sprintf "job %s already finished" id))))
  | Ok P.Drain ->
      d.draining <- true;
      d.drain_watchers <- conn :: d.drain_watchers;
      finish_drain_if_idle d
  | Ok P.Metrics -> post d conn (P.Metrics_text (Dfm_obs.Export.prometheus_now ()))
  | Ok (P.Telemetry_sub s) ->
      conn.telemetry <- Some s;
      conn.next_metrics_at <- 0.;
      d.next_span_pump <- 0.;
      refresh_span_collection d;
      post d conn P.Ok_resp
  | Ok P.Dump -> (
      (* No logging here: [mu] is held and the log sink would retake it. *)
      match Dfm_obs.Recorder.dump ~dir:(flight_dir d) ~reason:"dump request" with
      | Ok (trace, text) -> post d conn (P.Dumped { trace; text })
      | Error e -> post d conn (P.Error_msg ("flight dump failed: " ^ e)))
  | Ok P.Ping -> post d conn P.Pong

(* ---- connection I/O (network thread) ----------------------------------- *)

let close_conn d conn =
  if not conn.dead then begin
    conn.dead <- true;
    Hashtbl.remove d.conns conn.fd;
    Metrics.set m_connections (Hashtbl.length d.conns);
    (try Unix.close conn.fd with Unix.Unix_error _ -> ());
    if conn.telemetry <> None then refresh_span_collection d
  end

let pump_requests d conn =
  let rec go () =
    match Frame.Decoder.next conn.dec with
    | Ok (Some payload) ->
        Mutex.protect d.mu (fun () -> handle_request d conn payload);
        go ()
    | Ok None -> ()
    | Error e ->
        (* Fail closed: report the violation, then drop the connection.
           The daemon itself keeps serving everyone else. *)
        Mutex.protect d.mu (fun () ->
            post d conn (P.Error_msg e);
            conn.close_after_flush <- true)
  in
  go ()

let on_readable d conn =
  let buf = Bytes.create 65536 in
  let rec go () =
    match Unix.read conn.fd buf 0 (Bytes.length buf) with
    | 0 -> Mutex.protect d.mu (fun () -> close_conn d conn)
    | n ->
        Frame.Decoder.feed conn.dec buf n;
        pump_requests d conn;
        go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
        Mutex.protect d.mu (fun () -> close_conn d conn)
  in
  if not conn.dead then go ()

let on_writable d conn =
  Mutex.protect d.mu @@ fun () ->
  let rec go () =
    match Queue.peek_opt conn.outq with
    | None -> if conn.close_after_flush then close_conn d conn
    | Some head -> (
        let len = String.length head - conn.out_off in
        match Unix.write_substring conn.fd head conn.out_off len with
        | n ->
            conn.out_bytes <- conn.out_bytes - n;
            if n = len then begin
              ignore (Queue.pop conn.outq : string);
              conn.out_off <- 0;
              go ()
            end
            else conn.out_off <- conn.out_off + n
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
        | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
            close_conn d conn)
  in
  if not conn.dead then go ()

(* Shed the oldest idle event-stream connection: one that only awaits job
   events (registered as a watcher, nothing buffered for it).  Its client
   loses the stream, not the job — results are re-awaitable by id. *)
let shed_idle_watcher d =
  Mutex.protect d.mu @@ fun () ->
  let is_watcher c =
    Hashtbl.fold (fun _ j acc -> acc || List.memq c j.watchers) d.jobs false
  in
  let victim =
    Hashtbl.fold
      (fun _ c best ->
        if (not c.dead) && Queue.is_empty c.outq && is_watcher c then
          match best with Some b when b.created <= c.created -> best | _ -> Some c
        else best)
      d.conns None
  in
  match victim with
  | Some c ->
      Metrics.incr m_conns_shed;
      Log.warn "serve: fd exhaustion — shed oldest idle event stream (result stays awaitable)";
      close_conn d c;
      true
  | None -> false

let accept_backoff_initial = 0.05
let accept_backoff_max = 1.0

(* Descriptor exhaustion is a load condition, not a crash: free a
   descriptor if an idle stream can be shed, take the listening socket out
   of the select set for a bounded exponentially growing interval, and keep
   serving the connections that exist.  [serve.accept_emfile] injects this
   path deterministically for the chaos tests. *)
let accept_fd_exhausted d err =
  Metrics.incr m_accept_backoffs;
  ignore (shed_idle_watcher d : bool);
  d.accept_backoff <-
    (if d.accept_backoff = 0. then accept_backoff_initial
     else Float.min accept_backoff_max (d.accept_backoff *. 2.));
  d.accept_resume_at <- now () +. d.accept_backoff;
  Log.warn (Printf.sprintf "serve: accept failed (%s); retrying in %.2fs" err d.accept_backoff)

let accept_conn d =
  match Dfm_util.Failpoint.check "serve.accept_emfile" with
  | Some _ -> accept_fd_exhausted d "injected EMFILE"
  | None -> (
      match Unix.accept d.listen_fd with
      | fd, _ ->
          Unix.set_nonblock fd;
          d.accept_backoff <- 0.;
          d.accept_resume_at <- 0.;
          let conn =
            {
              fd;
              created = now ();
              dec = Frame.Decoder.create ();
              outq = Queue.create ();
              out_off = 0;
              out_bytes = 0;
              close_after_flush = false;
              dead = false;
              telemetry = None;
              next_metrics_at = 0.;
            }
          in
          Mutex.protect d.mu (fun () ->
              Hashtbl.add d.conns fd conn;
              Metrics.set m_connections (Hashtbl.length d.conns))
      | exception Unix.Unix_error ((Unix.EMFILE | Unix.ENFILE) as e, _, _) ->
          accept_fd_exhausted d (Unix.error_message e)
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ())

(* ---- telemetry pump (network thread) ----------------------------------- *)

let span_pump_interval = 0.25
let metrics_interval_floor_ms = 100

(* One shared span drain fans out to every span subscriber; metrics frames
   are rendered per subscription (family filter, interval).  Paced by the
   select loop: at worst one tick late, which telemetry tolerates. *)
let pump_telemetry d =
  let t = now () in
  Mutex.protect d.mu @@ fun () ->
  let span_subs =
    Hashtbl.fold
      (fun _ c acc ->
        match c.telemetry with
        | Some s when (not c.dead) && s.P.t_spans -> c :: acc
        | _ -> acc)
      d.conns []
  in
  if span_subs <> [] && t >= d.next_span_pump then begin
    d.next_span_pump <- t +. span_pump_interval;
    match Dfm_obs.Export.take_stream () with
    | [] -> ()
    | fresh ->
        let data = Dfm_obs.Export.complete_events_ndjson fresh in
        List.iter
          (fun c -> post_telemetry d c (P.Telemetry { stream = "spans"; data }))
          span_subs
  end;
  Hashtbl.iter
    (fun _ c ->
      match c.telemetry with
      | Some s when (not c.dead) && s.P.t_metrics && t >= c.next_metrics_at ->
          let interval_ms =
            match s.P.t_interval_ms with
            | Some ms -> max metrics_interval_floor_ms ms
            | None -> 1000
          in
          c.next_metrics_at <- t +. (float_of_int interval_ms /. 1000.);
          let snap = Dfm_obs.Export.filter_families s.P.t_families (Metrics.snapshot ()) in
          post_telemetry d c
            (P.Telemetry { stream = "metrics"; data = Dfm_obs.Export.prometheus_string snap })
      | _ -> ())
    d.conns

let serve_loop d =
  let drain_wake () =
    let buf = Bytes.create 256 in
    let rec go () =
      match Unix.read d.wake_r buf 0 256 with
      | 256 -> go ()
      | _ -> ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
    in
    go ()
  in
  let finished = ref false in
  while not !finished do
    let reads, writes, done_ =
      Mutex.protect d.mu @@ fun () ->
      let conns = Hashtbl.fold (fun _ c acc -> c :: acc) d.conns [] in
      (* While backing off from fd exhaustion the listening socket sits out
         of the select set; the 1.0s select timeout re-admits it on time. *)
      let accepting = now () >= d.accept_resume_at in
      let reads =
        (if accepting then [ d.listen_fd ] else [])
        @ d.wake_r
          :: List.filter_map (fun c -> if c.dead then None else Some c.fd) conns
      in
      let writes =
        List.filter_map
          (fun c ->
            if (not c.dead) && not (Queue.is_empty c.outq) then Some c.fd else None)
          conns
      in
      let flushed =
        List.for_all (fun c -> c.dead || Queue.is_empty c.outq) conns
      in
      (reads, writes, d.shutdown && flushed)
    in
    if done_ then finished := true
    else begin
      (match Unix.select reads writes [] 1.0 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | rs, ws, _ ->
          if List.mem d.wake_r rs then drain_wake ();
          if List.mem d.listen_fd rs then accept_conn d;
          List.iter
            (fun fd ->
              if fd <> d.listen_fd && fd <> d.wake_r then
                match Hashtbl.find_opt d.conns fd with
                | Some conn -> on_readable d conn
                | None -> ())
            rs;
          List.iter
            (fun fd ->
              match Hashtbl.find_opt d.conns fd with
              | Some conn -> on_writable d conn
              | None -> ())
            ws);
      if Atomic.exchange sigusr2_dump false then flight_dump_logged d ~reason:"SIGUSR2";
      pump_telemetry d
    end
  done

(* ---- startup: state dir, socket, ledger replay -------------------------- *)

let ensure_dir path =
  try
    if not (Sys.file_exists path) then Sys.mkdir path 0o755;
    if not (Sys.is_directory path) then
      raise (Startup_error (Printf.sprintf "%s is not a directory" path))
  with Sys_error e -> raise (Startup_error (Printf.sprintf "cannot create %s: %s" path e))

(* A socket file may be a live daemon or a stale leftover from a kill; only
   a connect can tell.  A live one is a startup error (duplicate daemon), a
   stale one is unlinked and replaced. *)
let claim_socket path =
  if Sys.file_exists path then begin
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      try
        Unix.connect probe (Unix.ADDR_UNIX path);
        true
      with Unix.Unix_error _ -> false
    in
    (try Unix.close probe with Unix.Unix_error _ -> ());
    if live then
      raise (Startup_error (Printf.sprintf "a daemon is already serving %s" path));
    try Unix.unlink path
    with Unix.Unix_error (e, _, _) ->
      raise
        (Startup_error
           (Printf.sprintf "cannot remove stale socket %s: %s" path (Unix.error_message e)))
  end;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind fd (Unix.ADDR_UNIX path);
     Unix.listen fd 64
   with Unix.Unix_error (e, _, _) ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise
       (Startup_error
          (Printf.sprintf "cannot listen on %s: %s" path (Unix.error_message e))));
  fd

let ledger_path state_dir = Filename.concat state_dir "ledger.bin"

type replayed = {
  rp_jobs : (string * job) list;  (* insertion order *)
  rp_next_id : int;
}

let replay_ledger path ckpt_dir_of =
  if not (Sys.file_exists path) then { rp_jobs = []; rp_next_id = 1 }
  else begin
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let data = really_input_string ic len in
    close_in ic;
    let dec = Frame.Decoder.create () in
    Frame.Decoder.feed dec (Bytes.of_string data) len;
    let jobs = ref [] in
    let next = ref 1 in
    let torn = ref None in
    let rec go () =
      match Frame.Decoder.next dec with
      | Ok None -> if Frame.Decoder.buffered dec > 0 then torn := Some "truncated tail"
      | Error e -> torn := Some e
      | Ok (Some payload) ->
          (match Wire.parse payload with
          | Error _ -> ()
          | Ok v -> (
              match Wire.str_field "rec" v with
              | Some "submit" -> (
                  match
                    ( Wire.str_field "job" v,
                      Option.bind (Wire.str_field "sub" v) (fun s ->
                          Result.to_option (P.request_of_json s)) )
                  with
                  | Some id, Some (P.Submit sub) ->
                      (match int_of_string_opt (String.sub id 1 (String.length id - 1)) with
                      | Some n when n >= !next -> next := n + 1
                      | _ -> ());
                      let ckpt =
                        Filename.concat (ckpt_dir_of id) "campaign.ckpt"
                      in
                      let j =
                        {
                          id;
                          sub;
                          resume = Sys.file_exists ckpt;
                          submitted = now ();
                          state = P.Pending;
                          detail = "";
                          result = None;
                          cancel = false;
                          started = 0.;
                          watchers = [];
                        }
                      in
                      jobs := (id, j) :: !jobs
                  | _ -> ())
              | Some "done" -> (
                  match
                    ( Wire.str_field "job" v,
                      Option.bind (Wire.str_field "res" v) (fun s ->
                          Result.to_option (P.response_of_json s)) )
                  with
                  | Some id, Some (P.Result p) -> (
                      match List.assoc_opt id !jobs with
                      | Some j ->
                          j.result <- Some p;
                          j.state <-
                            (match p.P.r_outcome with
                            | "done" -> P.Done
                            | "cancelled" -> P.Cancelled
                            | _ -> P.Failed);
                          j.detail <- (if p.P.r_outcome = "done" then "" else p.P.r_outcome)
                      | None -> ())
                  | _ -> ())
              | _ -> ()));
          go ()
    in
    go ();
    (match !torn with
    | Some e -> Log.warn (Printf.sprintf "serve: ledger tail dropped (%s)" e)
    | None -> ());
    { rp_jobs = List.rev !jobs; rp_next_id = !next }
  end

(* Route engine observability to the watchers of whichever job is running.
   The router drops nothing the engines rely on — logging is output-only —
   and events to slow readers are droppable by policy. *)
let install_obs_router d =
  Log.set_level Log.Info;
  Log.set_sink
    (Some
       (fun (r : Log.record) ->
         Mutex.protect d.mu @@ fun () ->
         match d.running with
         | Some j ->
             post_watchers ~droppable:true d j
               (P.Event
                  {
                    job = j.id;
                    stream = "log";
                    data =
                      Printf.sprintf "%s: %s" (Log.level_to_string r.Log.level) r.Log.message;
                  })
         | None -> ()));
  Dfm_obs.Progress.set_enabled true;
  Dfm_obs.Progress.set_output
    (Some
       (fun line ->
         Mutex.protect d.mu @@ fun () ->
         match d.running with
         | Some j ->
             post_watchers ~droppable:true d j
               (P.Event { job = j.id; stream = "progress"; data = line })
         | None -> ()))

let run ?(on_ready = fun () -> ()) cfg =
  ensure_dir cfg.state_dir;
  ensure_dir (Filename.concat cfg.state_dir "jobs");
  ensure_dir (Filename.concat cfg.state_dir "cache");
  let listen_fd = claim_socket cfg.socket_path in
  let ledger_file = ledger_path cfg.state_dir in
  let replayed =
    replay_ledger ledger_file (fun id ->
        Filename.concat (Filename.concat cfg.state_dir "jobs") id)
  in
  let ledger =
    try open_out_gen [ Open_wronly; Open_append; Open_creat; Open_binary ] 0o644 ledger_file
    with Sys_error e ->
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      raise (Startup_error (Printf.sprintf "cannot open ledger: %s" e))
  in
  let cache =
    Dfm_incr.Cache.create
      ~dir:(Filename.concat cfg.state_dir "cache")
      ~log:(fun s -> Log.info s)
      ()
  in
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  let d =
    {
      cfg = { cfg with jobs = max 1 cfg.jobs };
      mu = Mutex.create ();
      cond = Condition.create ();
      listen_fd;
      wake_r;
      wake_w;
      conns = Hashtbl.create 16;
      jobs = Hashtbl.create 64;
      job_order = [];
      sched = Scheduler.create ();
      accounts = Hashtbl.create 16;
      account_order = [];
      cache;
      ledger;
      next_id = replayed.rp_next_id;
      running = None;
      accept_backoff = 0.;
      accept_resume_at = 0.;
      draining = false;
      drain_watchers = [];
      shutdown = false;
      completed = 0;
      next_span_pump = 0.;
      spans_at_start = Dfm_obs.Span.enabled ();
    }
  in
  (* Restart re-attach: completed jobs become awaitable history; incomplete
     ones go straight back on the queue, resynth jobs with their journal. *)
  List.iter
    (fun (_, j) ->
      register_job d j;
      if j.result = None then ignore (Scheduler.submit d.sched ~client:j.sub.P.client j.id : int))
    replayed.rp_jobs;
  Metrics.set m_queue_depth (Scheduler.pending d.sched);
  Dfm_util.Parallel.set_pool_floor d.cfg.jobs;
  Dfm_util.Parallel.set_default_jobs d.cfg.jobs;
  install_obs_router d;
  Dfm_obs.Recorder.set_enabled true;
  let old_usr2 =
    try
      Some
        (Sys.signal Sys.sigusr2 (Sys.Signal_handle (fun _ -> Atomic.set sigusr2_dump true)))
    with Invalid_argument _ | Sys_error _ -> None
  in
  let exec_thread = Thread.create executor d in
  on_ready ();
  serve_loop d;
  Mutex.protect d.mu (fun () ->
      d.shutdown <- true;
      Condition.broadcast d.cond);
  Thread.join exec_thread;
  Mutex.protect d.mu (fun () ->
      Hashtbl.iter (fun _ c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) d.conns;
      Hashtbl.reset d.conns);
  (try Unix.close d.listen_fd with Unix.Unix_error _ -> ());
  (try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ());
  (try Unix.close wake_r with Unix.Unix_error _ -> ());
  (try Unix.close wake_w with Unix.Unix_error _ -> ());
  close_out_noerr d.ledger;
  Dfm_incr.Cache.close d.cache;
  Dfm_util.Parallel.set_pool_floor 0;
  (match old_usr2 with
  | Some b -> ( try Sys.set_signal Sys.sigusr2 b with Invalid_argument _ | Sys_error _ -> ())
  | None -> ());
  Dfm_obs.Recorder.set_enabled false;
  Dfm_obs.Span.set_enabled d.spans_at_start;
  Metrics.set_attribution [];
  Log.set_sink None;
  Dfm_obs.Progress.set_output None;
  Dfm_obs.Progress.set_enabled false;
  d.completed

(** SAT-based combinational equivalence checking of two netlists.

    Scales to the full benchmark blocks where the BDD checker
    ({!Dfm_netlist.Equiv}) may blow up: a miter is built with the
    controllable points shared by label and a difference required at some
    observable point; UNSAT proves equivalence.  This is the check the
    resynthesis flow and the benches use to confirm that rewriting never
    changed circuit function. *)

type verdict =
  | Equivalent
  | Different of string  (** label of a differing observable point *)
  | Interface_mismatch of string

val check :
  ?certify:bool ->
  ?counted:bool ->
  Dfm_netlist.Netlist.t ->
  Dfm_netlist.Netlist.t ->
  verdict
(** [certify] (default [false]) replays each per-label equivalence proof
    (UNSAT) or distinguishing assignment (SAT) through the independent
    {!Dfm_sat.Cert.Check} verifier; a discrepancy raises
    {!Dfm_sat.Cert.Check_failed} instead of returning an unverified
    verdict.  [counted] (default [true]) is handed to the underlying
    solver; verification-only checks pass [~counted:false] so their search
    effort stays out of the process-wide {!Dfm_sat.Solver.totals} and a
    certified campaign reports the same solver effort as an uncertified
    one. *)

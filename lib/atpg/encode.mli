(** SAT encoding of fault-detection conditions.

    For each fault a *detection miter* is built over the cone of influence:
    the fault-free circuit restricted to the transitive fanin of the region
    of interest, a faulty copy of the transitive fanout of the fault site,
    an activation constraint specific to the fault model, and a requirement
    that at least one observable point differs.  SAT yields a test pattern;
    UNSAT is a proof that the fault is undetectable — the property whose
    spatial clustering the paper studies.

    Transition faults issue two queries (frame-1 initialization and frame-2
    stuck-at detection, under the enhanced-scan assumption); both must be
    satisfiable for the fault to be detectable.

    {2 Sessions}

    Queries run inside a {!session}: one persistent incremental solver (see
    {!Dfm_sat.Incremental}) whose good-circuit CNF is encoded once and
    shared.  Propagation cones — the faulty fanout copy plus the
    difference-at-observable-point requirement — are also shared, per fault
    site, under their own activation literals (an LRU-bounded window of
    live cones); each fault then contributes only the clauses binding its
    fault semantics to its cone's faulty seed variables, guarded by a
    per-query activation literal, and is solved assuming both literals.
    Learnt clauses are retained from query to query — each is a consequence
    of the full guarded CNF, so reuse is sound for every later fault; path
    sensitization lemmas about a shared cone in particular carry over
    directly to the next fault at the same site.  A query whose verdict is final is
    retired (activation permanently off, private variables pinned); a query
    that exhausts its conflict budget stays pending, and a later
    [check_incr] of the same fault re-solves it under a larger budget
    without re-encoding anything.

    [check] is the one-shot form: a throwaway session per fault, so each
    call is independent (the pre-incremental behaviour).  Verdicts are
    identical either way; in a shared session only the [cared] sets may be
    wider (see below) and, under a finite conflict budget, the point at
    which [Unknown] is returned may differ because retained learnt clauses
    shorten the search.

    Sessions are single-domain objects: create one per worker. *)

type test = {
  values : bool array;
      (** over the controllable points in {!Dfm_sim.Logic_sim.inputs} order;
          points outside the miter's cone of influence are [false] *)
  cared : bool array;
      (** which points the miter actually constrained — the rest may be
          re-randomized freely without losing detection of this fault.  In a
          shared session this is the set of points encoded so far, a
          superset of the fault's own cone: a coarser but still sound
          don't-care mask (every cone input is always included). *)
}

type verdict =
  | Tests of test list  (** one pattern, or two for a transition fault *)
  | Undetectable
  | Unknown  (** conflict budget exhausted (not produced at the defaults) *)

type session

val make_session : ?certify:bool -> ?counted:bool -> Dfm_sim.Logic_sim.t -> session
(** [certify] (default [false]) attaches a {!Dfm_sat.Cert} session to the
    solver: every SAT answer's model and every UNSAT answer's learnt-clause
    proof is replayed through the independent checker before the verdict is
    returned; a discrepancy raises {!Dfm_sat.Cert.Check_failed} rather than
    reporting an unverified verdict.  [counted] (default [true]) is passed
    to {!Dfm_sat.Incremental.create}: verification-only sessions use
    [~counted:false] so their solver effort stays out of process totals. *)

val session_certified : session -> bool

val check_incr :
  ?max_conflicts:int -> session -> Dfm_faults.Fault.t -> verdict
(** Classify one fault inside the shared session.  Re-checking a fault whose
    previous verdict was [Unknown] re-solves its still-live activation
    groups without re-encoding; re-checking a resolved fault re-derives the
    same verdict. *)

val check :
  ?certify:bool ->
  ?max_conflicts:int ->
  Dfm_sim.Logic_sim.t ->
  Dfm_faults.Fault.t ->
  verdict
(** One-shot: equivalent to [check_incr] on a fresh single-use session. *)

(** {2 Introspection (tests, metrics)} *)

val session_solver : session -> Dfm_sat.Solver.t
(** The session's underlying solver, e.g. for
    {!Dfm_sat.Solver.check_invariants} in tests. *)

val session_stats : session -> Dfm_sat.Incremental.stats

val pending_parts : session -> int
(** Number of query parts awaiting a final verdict (budget-exhausted). *)

val live_cones : session -> int
(** Number of shared propagation cones currently live (not yet retired by
    the LRU window).  [Incremental.stats] satisfy
    [activations = retired + pending_parts + live_cones] at any quiescent
    point of a session. *)

module N = Dfm_netlist.Netlist
module Cell = Dfm_netlist.Cell
module F = Dfm_faults.Fault
module Tt = Dfm_logic.Truthtable

type verdict = Test of bool array | Redundant | Aborted

let m_backtracks =
  Dfm_obs.Metrics.counter ~help:"PODEM search backtracks" "dfm_podem_backtracks_total"

(* Three-valued logic: 0, 1, X. *)
type v3 = V0 | V1 | VX

let v3_of_bool b = if b then V1 else V0

(* Evaluate a cell truth table over 3-valued inputs by completing the X
   inputs both ways (arity <= 4, so at most 16 completions). *)
let eval3 (f : Tt.t) (ins : v3 array) =
  let n = Tt.arity f in
  let xs = ref [] in
  for k = n - 1 downto 0 do
    if ins.(k) = VX then xs := k :: !xs
  done;
  match !xs with
  | [] ->
      let idx = ref 0 in
      Array.iteri (fun k v -> if v = V1 then idx := !idx lor (1 lsl k)) ins;
      if Tt.eval_index f !idx then V1 else V0
  | xvars ->
      let nx = List.length xvars in
      let first = ref None in
      let all_same = ref true in
      for m = 0 to (1 lsl nx) - 1 do
        let idx = ref 0 in
        Array.iteri (fun k v -> if v = V1 then idx := !idx lor (1 lsl k)) ins;
        List.iteri
          (fun j k -> if (m lsr j) land 1 = 1 then idx := !idx lor (1 lsl k))
          xvars;
        let b = Tt.eval_index f !idx in
        match !first with
        | None -> first := Some b
        | Some b0 -> if b <> b0 then all_same := false
      done;
      if !all_same then (match !first with Some b -> v3_of_bool b | None -> VX) else VX

type state = {
  ls : Dfm_sim.Logic_sim.t;
  nl : N.t;
  fault_loc : F.site_loc;
  fault_value : bool;  (* the stuck value *)
  pi_value : v3 array;          (* per controllable point, decision state *)
  good : v3 array;              (* per net *)
  faulty : v3 array;            (* per net *)
  input_index_of_net : (int, int) Hashtbl.t;
  observe : int list;
}

(* Full (good, faulty) 3-valued resimulation from the current PI values. *)
let imply st =
  let nl = st.nl in
  List.iteri
    (fun i (_, nid) ->
      st.good.(nid) <- st.pi_value.(i);
      st.faulty.(nid) <- st.pi_value.(i))
    (Dfm_sim.Logic_sim.inputs st.ls);
  Array.iter
    (fun (nn : N.net) ->
      match nn.N.driver with
      | N.Const v ->
          st.good.(nn.N.net_id) <- v3_of_bool v;
          st.faulty.(nn.N.net_id) <- v3_of_bool v
      | N.Pi _ | N.Gate_out _ -> ())
    nl.N.nets;
  (* Net-located fault on a source net: force the faulty copy. *)
  (match st.fault_loc with
  | F.On_net n -> (
      match (N.net nl n).N.driver with
      | N.Pi _ | N.Const _ -> st.faulty.(n) <- v3_of_bool st.fault_value
      | N.Gate_out _ -> ())
  | F.On_pin _ -> ());
  Array.iter
    (fun gid ->
      let g = N.gate nl gid in
      let n_in = Array.length g.N.fanins in
      let gi = Array.make n_in VX and fi = Array.make n_in VX in
      for k = 0 to n_in - 1 do
        gi.(k) <- st.good.(g.N.fanins.(k));
        fi.(k) <- st.faulty.(g.N.fanins.(k))
      done;
      (* Pin-located fault: the faulty copy of this gate sees the stuck
         value on that pin. *)
      (match st.fault_loc with
      | F.On_pin (fg, pin) when fg = gid -> fi.(pin) <- v3_of_bool st.fault_value
      | F.On_pin _ | F.On_net _ -> ());
      st.good.(g.N.fanout) <- eval3 g.N.cell.Cell.func gi;
      st.faulty.(g.N.fanout) <- eval3 g.N.cell.Cell.func fi;
      (* Net-located fault at this gate's output. *)
      match st.fault_loc with
      | F.On_net n when n = g.N.fanout -> st.faulty.(n) <- v3_of_bool st.fault_value
      | F.On_net _ | F.On_pin _ -> ())
    (Dfm_sim.Logic_sim.topo st.ls)

let fault_site_net st =
  match st.fault_loc with
  | F.On_net n -> n
  | F.On_pin (g, pin) -> (N.gate st.nl g).N.fanins.(pin)

let detected st =
  List.exists
    (fun o -> st.good.(o) <> VX && st.faulty.(o) <> VX && st.good.(o) <> st.faulty.(o))
    st.observe

(* The D-frontier: gates with a propagated difference on some input and an
   undetermined output difference. *)
let d_frontier st =
  List.filter_map
    (fun (g : N.gate) ->
      let out = g.N.fanout in
      let out_diff = st.good.(out) <> VX && st.faulty.(out) <> VX && st.good.(out) <> st.faulty.(out) in
      let out_open = st.good.(out) = VX || st.faulty.(out) = VX in
      if out_diff || not out_open then None
      else if
        Array.exists
          (fun fn ->
            st.good.(fn) <> VX && st.faulty.(fn) <> VX && st.good.(fn) <> st.faulty.(fn))
          g.N.fanins
      then Some g
      else None)
    (N.comb_gates st.nl)

(* Backtrace an objective (net, value) through X-valued logic to a PI
   assignment.  For an arbitrary cell function we pick an X input and a value
   for it under which the desired output is still achievable. *)
let rec backtrace st net desired =
  match Hashtbl.find_opt st.input_index_of_net net with
  | Some i -> Some (i, desired)
  | None -> (
      match (N.net st.nl net).N.driver with
      | N.Pi _ | N.Const _ -> None
      | N.Gate_out gid ->
          let g = N.gate st.nl gid in
          let f = g.N.cell.Cell.func in
          let n_in = Array.length g.N.fanins in
          let current = Array.map (fun fn -> st.good.(fn)) g.N.fanins in
          (* try each X input and each value: keep one that leaves the
             desired output reachable *)
          let try_choice k v =
            let trial = Array.copy current in
            trial.(k) <- v;
            (* reachable if some completion of the remaining X gives desired *)
            let n_x = ref 0 in
            Array.iter (fun t -> if t = VX then incr n_x) trial;
            let xvars = ref [] in
            Array.iteri (fun j t -> if t = VX then xvars := j :: !xvars) trial;
            let reachable = ref false in
            for m = 0 to (1 lsl !n_x) - 1 do
              let idx = ref 0 in
              Array.iteri (fun j t -> if t = V1 then idx := !idx lor (1 lsl j)) trial;
              List.iteri
                (fun j k' -> if (m lsr j) land 1 = 1 then idx := !idx lor (1 lsl k'))
                !xvars;
              if v3_of_bool (Tt.eval_index f !idx) = desired then reachable := true
            done;
            !reachable
          in
          let rec pick k =
            if k >= n_in then None
            else if current.(k) = VX then
              if try_choice k V1 then backtrace st g.N.fanins.(k) V1
              else if try_choice k V0 then backtrace st g.N.fanins.(k) V0
              else pick (k + 1)
            else pick (k + 1)
          in
          pick 0)

let check ?(max_backtracks = 10_000) ls (fault : F.t) =
  let loc, pol =
    match fault.F.kind with
    | F.Stuck (loc, pol) -> (loc, pol)
    | F.Transition _ | F.Bridge _ | F.Internal _ ->
        invalid_arg "Podem.check: only stuck-at faults"
  in
  let nl = Dfm_sim.Logic_sim.netlist ls in
  let inputs = Dfm_sim.Logic_sim.inputs ls in
  let input_index_of_net = Hashtbl.create 64 in
  List.iteri (fun i (_, nid) -> Hashtbl.add input_index_of_net nid i) inputs;
  let st =
    {
      ls;
      nl;
      fault_loc = loc;
      fault_value = (pol = F.Sa1);
      pi_value = Array.make (List.length inputs) VX;
      good = Array.make (N.num_nets nl) VX;
      faulty = Array.make (N.num_nets nl) VX;
      input_index_of_net;
      observe = List.map snd (N.observe_nets nl);
    }
  in
  let backtracks = ref 0 in
  (* Decision stack: (pi index, tried-both-values?). *)
  let stack = ref [] in
  let exception Done of verdict in
  let site = fault_site_net st in
  try
    imply st;
    let rec search () =
      if detected st then
        raise
          (Done
             (Test
                (Array.map (fun v -> v = V1) st.pi_value)))
      else begin
        (* Choose the next objective. *)
        let objective =
          if st.good.(site) = VX then
            (* activate: good value must be the opposite of the stuck value *)
            Some (site, if st.fault_value then V0 else V1)
          else if st.good.(site) = v3_of_bool st.fault_value then None  (* not activatable now *)
          else begin
            (* propagate through the D-frontier *)
            match d_frontier st with
            | [] -> None
            | g :: _ -> (
                (* set some X input of the frontier gate *)
                let rec first_x k =
                  if k >= Array.length g.N.fanins then None
                  else if st.good.(g.N.fanins.(k)) = VX then Some g.N.fanins.(k)
                  else first_x (k + 1)
                in
                match first_x 0 with None -> None | Some n -> Some (n, V1))
          end
        in
        match objective with
        | None -> backtrack ()
        | Some (net, desired) -> (
            match backtrace st net desired with
            | None -> backtrack ()
            | Some (pi, v) ->
                stack := (pi, false) :: !stack;
                st.pi_value.(pi) <- v;
                imply st;
                search ())
      end
    and backtrack () =
      incr backtracks;
      if !backtracks > max_backtracks then raise (Done Aborted);
      match !stack with
      | [] -> raise (Done Redundant)
      | (pi, true) :: rest ->
          st.pi_value.(pi) <- VX;
          stack := rest;
          imply st;
          backtrack ()
      | (pi, false) :: rest ->
          st.pi_value.(pi) <- (if st.pi_value.(pi) = V1 then V0 else V1);
          stack := (pi, true) :: rest;
          imply st;
          search ()
    in
    search ()
  with Done v ->
    (* Flushed once per check, never per backtrack, to keep the search hot
       path free of atomic traffic. *)
    Dfm_obs.Metrics.incr ~by:!backtracks m_backtracks;
    v

let m_sat_fallbacks =
  Dfm_obs.Metrics.counter ~help:"PODEM aborts escalated to a SAT query"
    "dfm_podem_sat_fallbacks_total"

let check_with_sat ?max_backtracks ?max_conflicts ?session ls (fault : F.t) =
  match check ?max_backtracks ls fault with
  | (Test _ | Redundant) as v -> v
  | Aborted -> (
      Dfm_obs.Metrics.incr m_sat_fallbacks;
      let verdict =
        match session with
        | Some sess -> Encode.check_incr ?max_conflicts sess fault
        | None -> Encode.check ?max_conflicts ls fault
      in
      match verdict with
      | Encode.Tests (t :: _) -> Test t.Encode.values
      | Encode.Tests [] -> Aborted
      | Encode.Undetectable -> Redundant
      | Encode.Unknown -> Aborted)

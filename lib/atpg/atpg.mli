(** Automatic test pattern generation campaigns over a DFM fault list.

    Two entry points share the same detection semantics:

    - {!classify} answers only "which faults are detectable?" — a
      random-pattern phase drops the easy faults, then each survivor gets a
      SAT query whose UNSAT outcome *proves* undetectability.  This is the
      fast path used inside the resynthesis loop, where only the undetectable
      counts matter.

    - {!generate} additionally builds a compacted test set [T] (the paper's
      column [T]): faults are processed in order; an undetected fault gets a
      SAT-generated test whose unconstrained inputs are randomized in all 64
      bit positions, the most profitable bit position becomes the test, and
      every fault it detects is dropped.

    Transition faults account for both components (frame-1 initialization and
    frame-2 detection, possibly covered by different tests — the enhanced
    scan pairing documented in [Fault]). *)

type status = Detected | Undetectable | Aborted

type counts = {
  total : int;
  detected : int;
  undetectable : int;
  aborted : int;
  undetectable_internal : int;
  undetectable_external : int;
  sat_queries : int;
}

type classification = {
  status : status array;  (** indexed by [fault_id] *)
  counts : counts;
}

type generation = {
  classification : classification;
  tests : bool array list;
      (** compacted test set, patterns over {!Dfm_sim.Logic_sim.inputs} *)
  cross_check_failures : int;
      (** SAT-generated tests the fault simulator disagreed with (0 in a
          healthy build; surfaced for the test suite) *)
}

val classify :
  ?seed:int ->
  ?max_conflicts:int ->
  ?random_blocks:int ->
  ?jobs:int ->
  ?cache:Dfm_incr.Cache.t ->
  Dfm_netlist.Netlist.t ->
  Dfm_faults.Fault.t array ->
  classification
(** [random_blocks] 64-pattern blocks precede the SAT phase (default 16).

    [jobs] (default {!Dfm_util.Parallel.default_jobs}, i.e. [REPRO_JOBS] or
    the machine's domain count) shards the fault list over that many worker
    domains for both the random-simulation prefilter and the SAT phase.
    Shards are contiguous ranges that are a pure function of the fault and
    job counts, each worker owns its own simulator scratch and solver
    state, and per-fault verdicts do not depend on each other — so the
    classification is bit-identical to the sequential result for every
    [jobs] value.  [jobs = 1] never spawns a domain.

    [cache] consults a content-addressed verdict store before {e both} the
    random-simulation prefilter and the SAT phase, and publishes the
    freshly derived Detected/Undetectable verdicts afterwards.  Correctness
    invariant: for any netlist and any warm or cold cache state the
    classification is bit-identical to the uncached run — the cache may
    only skip work, never change a verdict.  (Signatures include
    [max_conflicts]; with a {e bounded} budget a warm cache can additionally
    resolve faults that budget would have Aborted — strictly more
    information, never a contradicting verdict.  At the default unbounded
    budget no Aborted verdicts exist and the identity is exact.)  All cache
    traffic happens in the coordinating domain, so the [jobs] bit-identity
    above is preserved verbatim. *)

val generate :
  ?seed:int ->
  ?max_conflicts:int ->
  Dfm_netlist.Netlist.t ->
  Dfm_faults.Fault.t array ->
  generation

val coverage : counts -> float
(** The paper's [Cov = 1 - U/F], as a percentage. *)

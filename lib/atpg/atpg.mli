(** Automatic test pattern generation campaigns over a DFM fault list.

    Two entry points share the same detection semantics:

    - {!classify} answers only "which faults are detectable?" — a
      random-pattern phase drops the easy faults, then each survivor gets a
      SAT query whose UNSAT outcome *proves* undetectability.  This is the
      fast path used inside the resynthesis loop, where only the undetectable
      counts matter.

    - {!generate} additionally builds a compacted test set [T] (the paper's
      column [T]): faults are processed in order; an undetected fault gets a
      SAT-generated test whose unconstrained inputs are randomized in all 64
      bit positions, the most profitable bit position becomes the test, and
      every fault it detects is dropped.

    Transition faults account for both components (frame-1 initialization and
    frame-2 detection, possibly covered by different tests — the enhanced
    scan pairing documented in [Fault]). *)

type status = Detected | Undetectable | Aborted

(** How SAT queries are issued.

    - [Oneshot]: every query builds a throwaway solver — the
      pre-incremental behaviour; queries are fully independent.
    - [Incremental] (the default): all unresolved faults of a shard share
      one persistent solver session ({!Dfm_sat.Incremental}): the
      good-circuit CNF is encoded once, each fault contributes only
      activation-guarded faulty-cone clauses, and learnt clauses carry from
      query to query.

    Semantic verdicts (Detected / Undetectable) are identical in both
    modes, for any [jobs] value.  Under a {e bounded} [max_conflicts]
    budget only the [Aborted] frontier can differ: retained learnt clauses
    let incremental sessions resolve within a budget that a cold solver
    would exhaust, and that head start depends on which faults preceded a
    query in its shard.  At the default unbounded budget no Aborted
    verdicts exist and the two modes are bit-identical. *)
type sat_mode = Oneshot | Incremental

val default_sat_mode : unit -> sat_mode
(** [Incremental], unless the [REPRO_SAT_MODE] environment variable says
    [oneshot].  @raise Invalid_argument on an unknown value. *)

type counts = {
  total : int;
  detected : int;
  undetectable : int;
  aborted : int;
  undetectable_internal : int;
  undetectable_external : int;
  sat_queries : int;
}

type classification = {
  status : status array;  (** indexed by [fault_id] *)
  counts : counts;
}

type generation = {
  classification : classification;
  tests : bool array list;
      (** compacted test set, patterns over {!Dfm_sim.Logic_sim.inputs} *)
  cross_check_failures : int;
      (** SAT-generated tests the fault simulator disagreed with (0 in a
          healthy build; surfaced for the test suite) *)
}

val sat_seconds : unit -> float
(** Process-wide wall time spent in the SAT phase of classification
    (session setup, per-fault encoding and solving), accumulated across
    every campaign in every domain — the random-simulation prefilter is
    excluded.  Like {!Dfm_sat.Solver.totals}, meant to be delta'd around a
    fixed query set; used by the bench to report per-fault SAT time per
    {!sat_mode}. *)

val classify :
  ?seed:int ->
  ?max_conflicts:int ->
  ?random_blocks:int ->
  ?jobs:int ->
  ?cache:Dfm_incr.Cache.t ->
  ?static_filter:(Dfm_faults.Fault.t -> bool) ->
  ?sat_mode:sat_mode ->
  ?certify:bool ->
  Dfm_netlist.Netlist.t ->
  Dfm_faults.Fault.t array ->
  classification
(** [random_blocks] 64-pattern blocks precede the SAT phase (default 16).

    [certify] (default [false]) makes every emitted verdict carry an
    independently checked certificate: Detected verdicts keep their
    detecting pattern (random-simulation witness or SAT model) and are
    re-verified by good/faulty resimulation in the coordinating domain;
    Undetectable verdicts from the SAT phase have their learnt-clause
    proofs replayed through {!Dfm_sat.Cert.Check}; [static_filter] claims
    are re-proven by certified SAT queries on an uncounted verification
    session; and cache hits are restricted to entries published by a
    certified run whose stored certificate mark validated.  A failed check
    raises {!Dfm_sat.Cert.Check_failed} instead of returning.  The
    classification (statuses and counts) is bit-identical to the
    uncertified run — certification only adds checks, never changes a
    verdict — and the check counts in {!Dfm_sat.Cert.totals} are
    per-verdict, hence identical for every [jobs] value.

    [jobs] (default {!Dfm_util.Parallel.default_jobs}, i.e. [REPRO_JOBS] or
    the machine's domain count) shards the fault list over that many worker
    domains for both the random-simulation prefilter and the SAT phase.
    Shards are contiguous ranges that are a pure function of the fault and
    job counts, each worker owns its own simulator scratch and solver
    state, and semantic per-fault verdicts do not depend on each other — so
    the classification is bit-identical to the sequential result for every
    [jobs] value.  [jobs = 1] never spawns a domain.  (With the default
    [Incremental] SAT mode {e and} a bounded [max_conflicts], the identity
    covers the semantic verdicts; the [Aborted] frontier can shift with the
    shard layout — see {!sat_mode}.  At the default unbounded budget, or in
    [Oneshot] mode, the identity is exact bit-for-bit.)

    [cache] consults a content-addressed verdict store before {e both} the
    random-simulation prefilter and the SAT phase, and publishes the
    freshly derived Detected/Undetectable verdicts afterwards.  Correctness
    invariant: for any netlist and any warm or cold cache state the
    classification is bit-identical to the uncached run — the cache may
    only skip work, never change a verdict.  (Signatures include
    [max_conflicts]; with a {e bounded} budget a warm cache can additionally
    resolve faults that budget would have Aborted — strictly more
    information, never a contradicting verdict.  At the default unbounded
    budget no Aborted verdicts exist and the identity is exact.)  All cache
    traffic happens in the coordinating domain, so the [jobs] bit-identity
    above is preserved verbatim.

    [static_filter] is a sound static undetectability proof (in practice
    {!Dfm_lint.Dataflow.prove_undetectable} of the same netlist): faults it
    returns [true] for are marked Undetectable up front and skip the cache
    lookup, the random-simulation prefilter and the SAT phase — shrinking
    [sat_queries].  Soundness contract: the filter may only accept faults
    whose SAT detection query is unsatisfiable, so the classification
    (statuses and every count except [sat_queries]) is bit-identical to the
    unfiltered run; this is qcheck-enforced by the lint test suite.  The
    filter runs in the coordinating domain before any sharding, and its
    verdicts are published to [cache] like freshly derived ones. *)

type escalation_policy = {
  factor : int;  (** budget multiplier per rung, clamped to >= 2 *)
  max_total_conflicts : int;
      (** total-effort cap: the sum of granted budgets across all escalation
          queries never exceeds this *)
}

val default_escalation : escalation_policy
(** [{ factor = 4; max_total_conflicts = 1_000_000 }] *)

type escalation_stats = {
  rungs : int;       (** ladder rungs that ran at least one query *)
  retried : int;     (** escalation SAT queries issued *)
  resolved : int;    (** aborts turned into semantic verdicts *)
  residual : int;    (** aborts surviving the whole ladder — reported, never dropped *)
  effort : int;      (** sum of granted conflict budgets *)
  aborted_per_rung : int list;
      (** aborts remaining {e after} each rung — monotonically non-increasing *)
}

val escalate :
  ?policy:escalation_policy ->
  ?cache:Dfm_incr.Cache.t ->
  ?sat_mode:sat_mode ->
  ?certify:bool ->
  max_conflicts:int ->
  Dfm_netlist.Netlist.t ->
  Dfm_faults.Fault.t array ->
  classification ->
  classification * escalation_stats
(** Retry the [Aborted] faults of a bounded-budget classification on a
    geometric conflict-budget ladder [max_conflicts * factor^k], stopping
    when every abort is resolved or the total-effort cap is reached.
    Because solver conclusions are budget-monotone, in [Oneshot] mode the
    result is bit-identical (statuses and counts other than [sat_queries])
    to a single {!classify} run at the ladder's final budget — the ladder
    only spends the large budgets on the faults that still need them.  In
    the default [Incremental] mode one solver session persists across the
    whole ladder: retried faults re-solve their still-live activation
    groups without re-encoding, learnt clauses accumulate from rung to
    rung, and a fault can therefore resolve on an {e earlier} rung than a
    cold run would need — semantic verdicts are unchanged, only the effort
    frontier improves.  Resolved verdicts are published to [cache] under
    the original [max_conflicts] signatures; residual aborts stay
    [Aborted] in the returned classification.  Runs in the calling
    domain. *)

val generate :
  ?seed:int ->
  ?max_conflicts:int ->
  ?sat_mode:sat_mode ->
  ?certify:bool ->
  Dfm_netlist.Netlist.t ->
  Dfm_faults.Fault.t array ->
  generation
(** [certify] checks SAT models and UNSAT proofs exactly as in {!classify};
    detected faults are witness-checked by the per-word resimulation that
    generation performs anyway, with a cross-check miss escalated from a
    counter to {!Dfm_sat.Cert.Check_failed}. *)

val coverage : counts -> float
(** The paper's [Cov = 1 - U/F], as a percentage. *)

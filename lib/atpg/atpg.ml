module F = Dfm_faults.Fault
module Ls = Dfm_sim.Logic_sim
module Fs = Dfm_sim.Fault_sim
module Rng = Dfm_util.Rng
module Parallel = Dfm_util.Parallel
module Span = Dfm_obs.Span
module Metrics = Dfm_obs.Metrics
module Cert = Dfm_sat.Cert

(* Escalation-ladder metrics (see [escalate]); registered up front so the
   family is always present in the exposition. *)
let m_esc_rungs =
  Metrics.counter ~help:"Escalation ladder rungs executed" "dfm_escalation_rungs_total"

let m_esc_retried =
  Metrics.counter ~help:"Aborted faults retried on the escalation ladder"
    "dfm_escalation_retries_total"

let m_esc_resolved =
  Metrics.counter ~help:"Aborted faults resolved by escalation"
    "dfm_escalation_resolved_total"

let m_classified =
  Metrics.counter ~help:"Faults classified (including cache hits)"
    "dfm_atpg_faults_classified_total"

let m_static_filtered =
  Metrics.counter ~help:"Faults proven Undetectable by the static pre-SAT filter"
    "dfm_atpg_static_filtered_total"

(* Per-tenant attributable effort: SAT queries issued and wall time spent
   in the SAT phase, bumped where the work happens so worker domains are
   counted too. *)
let m_sat_queries =
  Metrics.attributed_counter ~help:"SAT queries issued by fault classification"
    "dfm_atpg_sat_queries_total"

let m_sat_ns =
  Metrics.attributed_counter
    ~help:"Nanoseconds spent in the SAT phase of fault classification"
    "dfm_atpg_sat_ns_total"

type status = Detected | Undetectable | Aborted

type sat_mode = Oneshot | Incremental

(* Incremental is the default engine; REPRO_SAT_MODE=oneshot restores the
   throwaway-solver-per-query behaviour fleet-wide (e.g. to bisect a
   suspected solver-state bug without touching call sites). *)
let default_sat_mode () =
  match Sys.getenv_opt "REPRO_SAT_MODE" with
  | Some "oneshot" -> Oneshot
  | Some "incremental" | None -> Incremental
  | Some other ->
      invalid_arg (Printf.sprintf "REPRO_SAT_MODE: unknown mode %S" other)

type counts = {
  total : int;
  detected : int;
  undetectable : int;
  aborted : int;
  undetectable_internal : int;
  undetectable_external : int;
  sat_queries : int;
}

type classification = { status : status array; counts : counts }

type generation = {
  classification : classification;
  tests : bool array list;
  cross_check_failures : int;
}

(* Shared campaign state.  In a parallel campaign the per-fault arrays are
   written by worker domains at disjoint indices (one contiguous shard per
   worker); everything else is written by the coordinating domain only. *)
type state = {
  ls : Ls.t;
  fs : Fs.t;  (* scratch of the coordinating domain; never given to workers *)
  faults : F.t array;
  st : int array;  (* 0 unresolved, 1 detected, 2 undetectable, 3 aborted *)
  tf_init : bool array;   (* transition frame-1 covered *)
  tf_stuck : bool array;  (* transition frame-2 covered *)
  mutable sat_queries : int;
  certify : bool;
  witness : bool array list array;
      (* certified mode only: per-fault detecting input patterns — the
         random-simulation pattern that first detected the fault, or the
         SAT models — re-verified by independent resimulation before the
         Detected verdict is reported.  Written at the fault's own index
         only, so shards stay disjoint. *)
}

let make_state ?(certify = false) nl faults =
  let ls = Ls.prepare nl in
  {
    ls;
    fs = Fs.prepare nl;
    faults;
    st = Array.make (Array.length faults) 0;
    tf_init = Array.make (Array.length faults) false;
    tf_stuck = Array.make (Array.length faults) false;
    sat_queries = 0;
    certify;
    witness = Array.make (max 1 (Array.length faults)) [];
  }

let resolve s fid v = if s.st.(fid) = 0 then s.st.(fid) <- v

let unresolved_count s =
  Array.fold_left (fun acc v -> if v = 0 then acc + 1 else acc) 0 s.st

let is_transition (f : F.t) = match f.F.kind with F.Transition _ -> true | _ -> false

(* Bit index of the least significant set bit ([w <> 0L]). *)
let lsb_bit w =
  let b = ref 0 and x = ref w in
  while Int64.logand !x 1L = 0L do
    x := Int64.shift_right_logical !x 1;
    incr b
  done;
  !b

(* Apply the detection evidence of one simulated word restricted to bit
   [mask] (use [-1L] for all 64 bits).  [fs] is the caller's simulator
   scratch — per worker in a parallel campaign.  In certified mode the
   pattern words are snapshotted as the fault's detection witness the first
   time each detection condition is observed. *)
let apply_words s fs ~words ~mask ~good fid =
  let f = s.faults.(fid) in
  let snap w =
    if s.certify && w <> 0L then
      s.witness.(fid) <- Ls.pattern_of_words words (lsb_bit w) :: s.witness.(fid)
  in
  if is_transition f then begin
    let dw = Int64.logand mask (Fs.detect_word fs ~good f) in
    let iw = Int64.logand mask (Fs.init_word fs ~good f) in
    if dw <> 0L then begin
      if not s.tf_stuck.(fid) then snap dw;
      s.tf_stuck.(fid) <- true
    end;
    if iw <> 0L then begin
      if not s.tf_init.(fid) then snap iw;
      s.tf_init.(fid) <- true
    end;
    if s.tf_stuck.(fid) && s.tf_init.(fid) then resolve s fid 1
  end
  else begin
    let dw = Int64.logand mask (Fs.detect_word fs ~good f) in
    if dw <> 0L then begin
      snap dw;
      resolve s fid 1
    end
  end

let sim_range s fs ~words ~good ~lo ~hi =
  for fid = lo to hi - 1 do
    if s.st.(fid) = 0 then apply_words s fs ~words ~mask:(-1L) ~good fid
  done

(* Process-wide wall time spent in the SAT phase (session setup, per-fault
   encoding and solving — everything except the random-simulation
   prefilter), accumulated in nanoseconds across all domains.  Deltas of
   this around a classify give the mode-comparable "per-fault SAT time"
   the bench reports; the prefilter is mode-independent and would only
   dilute the comparison. *)
let sat_nanos_total = Atomic.make 0

let sat_seconds () = 1e-9 *. float_of_int (Atomic.get sat_nanos_total)

(* One SAT query per unresolved fault of [lo, hi); returns the query count.
   In [Oneshot] mode every query builds a throwaway solver, so queries are
   fully independent.  In [Incremental] mode the whole range shares one
   session: the good-circuit CNF is encoded once and each fault adds only
   activation-guarded faulty-cone clauses, with learnt clauses carried from
   query to query.  Either way a range writes only its own [lo, hi) slots,
   so shards stay restartable — a supervised retry simply starts a fresh
   session for the still-unresolved suffix. *)
let sat_range ?max_conflicts ~sat_mode s ~lo ~hi =
  let t0 = Dfm_obs.Clock.now_ns () in
  let queries = ref 0 in
  let check =
    match sat_mode with
    | Oneshot -> fun f -> Encode.check ~certify:s.certify ?max_conflicts s.ls f
    | Incremental ->
        let sess = lazy (Encode.make_session ~certify:s.certify s.ls) in
        fun f -> Encode.check_incr ?max_conflicts (Lazy.force sess) f
  in
  for fid = lo to hi - 1 do
    if s.st.(fid) = 0 then begin
      incr queries;
      match check s.faults.(fid) with
      | Encode.Tests pats ->
          (* Certified mode: the SAT models become the fault's witness,
             re-verified by resimulation once the campaign quiesces. *)
          if s.certify then
            s.witness.(fid) <- List.map (fun (t : Encode.test) -> t.Encode.values) pats;
          s.st.(fid) <- 1
      | Encode.Undetectable -> s.st.(fid) <- 2
      | Encode.Unknown -> s.st.(fid) <- 3
    end
  done;
  let elapsed = Int64.to_int (Int64.sub (Dfm_obs.Clock.now_ns ()) t0) in
  ignore (Atomic.fetch_and_add sat_nanos_total elapsed);
  Metrics.incr_attr ~by:!queries m_sat_queries;
  Metrics.incr_attr ~by:elapsed m_sat_ns;
  !queries

(* Certified mode: re-verify one Detected fault's witness patterns by
   independent good/faulty resimulation through the coordinator's scratch
   simulator.  Detection must reproduce (both frames, for transitions) or
   the campaign fails loudly rather than report an unverified verdict. *)
let verify_detected s fid =
  let t0 = Dfm_obs.Clock.now_ns () in
  let f = s.faults.(fid) in
  let det = ref false and init = ref false in
  List.iter
    (fun pat ->
      let good = Ls.run s.ls (Ls.words_of_pattern pat) in
      if Fs.detect_word s.fs ~good f <> 0L then det := true;
      if is_transition f && Fs.init_word s.fs ~good f <> 0L then init := true)
    s.witness.(fid);
  let ok = !det && ((not (is_transition f)) || !init) in
  Cert.note_check ~ok ~ns:(Int64.sub (Dfm_obs.Clock.now_ns ()) t0);
  if not ok then
    raise
      (Cert.Check_failed
         (Printf.sprintf "witness for fault %d (%s) does not reproduce detection" fid
            (F.describe (Ls.netlist s.ls) f)))

let finish_counts s =
  let detected = ref 0 and undet = ref 0 and aborted = ref 0 in
  let undet_int = ref 0 and undet_ext = ref 0 in
  let status =
    Array.mapi
      (fun fid v ->
        match v with
        | 1 ->
            incr detected;
            Detected
        | 2 ->
            incr undet;
            if F.is_internal s.faults.(fid) then incr undet_int else incr undet_ext;
            Undetectable
        | 3 ->
            incr aborted;
            Aborted
        | _ -> failwith "Atpg: unresolved fault at the end of a campaign")
      s.st
  in
  {
    status;
    counts =
      {
        total = Array.length s.faults;
        detected = !detected;
        undetectable = !undet;
        aborted = !aborted;
        undetectable_internal = !undet_int;
        undetectable_external = !undet_ext;
        sat_queries = s.sat_queries;
      };
  }

(* Contiguous per-worker shards.  The bounds are a pure function of the
   fault count and the job count, and every per-fault result is a pure
   function of the fault alone, so the merged classification is
   bit-identical to the sequential ([jobs = 1]) run for any job count. *)
let shard_bounds ~jobs nf = Parallel.chunk_bounds ~chunk:((nf + jobs - 1) / jobs) nf

let classify ?(seed = 1) ?max_conflicts ?(random_blocks = 16) ?jobs ?cache ?static_filter
    ?sat_mode ?(certify = false) nl faults =
  Span.with_ "atpg.classify"
    ~attrs:[ ("faults", string_of_int (Array.length faults)) ]
  @@ fun () ->
  let sat_mode = match sat_mode with Some m -> m | None -> default_sat_mode () in
  let nf = Array.length faults in
  Metrics.incr ~by:nf m_classified;
  let jobs =
    let j = match jobs with Some j -> j | None -> Parallel.default_jobs () in
    max 1 (min j (max 1 nf))
  in
  let s = make_state ~certify nl faults in
  (* Static pre-SAT filter: faults the sound dataflow analysis proves
     Undetectable are decided here, in the coordinating domain, before the
     cache, the random-simulation prefilter and the SAT phase ever see
     them.  The filter is an under-approximation of the SAT queries'
     UNSAT outcomes, so this can only skip work, never change a verdict;
     the decided faults are published to the cache below like any other
     freshly derived verdict. *)
  (match static_filter with
  | None -> ()
  | Some prove ->
      let proven = ref [] in
      Array.iteri
        (fun fid f ->
          if prove f then begin
            s.st.(fid) <- 2;
            proven := fid :: !proven
          end)
        faults;
      Metrics.incr ~by:(List.length !proven) m_static_filtered;
      (* Certified mode: every Undetectable the filter claims is re-proven
         by a certified SAT query on a verification-only (uncounted) session
         — the independent checker replays each proof, so a filter
         unsoundness surfaces as [Check_failed] here rather than as an
         uncertified verdict in the report. *)
      if certify && !proven <> [] then begin
        let vs = Encode.make_session ~certify:true ~counted:false s.ls in
        List.iter
          (fun fid ->
            match Encode.check_incr vs faults.(fid) with
            | Encode.Undetectable -> ()
            | Encode.Tests _ | Encode.Unknown ->
                raise
                  (Cert.Check_failed
                     (Printf.sprintf "static filter claim not re-provable for fault %d (%s)"
                        fid
                        (F.describe nl faults.(fid)))))
          (List.rev !proven)
      end);
  (* Cache consultation happens here in the coordinating domain, before any
     worker is spawned, so the sharded phases see exactly the same disjoint
     per-fault work in every configuration and the jobs=N bit-identity
     argument is untouched.  Only semantic verdicts come out of the store
     (no Aborted), so a hit can only skip the work the phases below would
     have spent re-deriving the same verdict. *)
  let cached = Array.make (max 1 nf) false in
  let sigs =
    match cache with
    | None -> [||]
    | Some c ->
        let sigs = Dfm_incr.Cache.signatures c ?max_conflicts nl faults in
        (* In certified mode only entries published by a certified run (and
           whose stored certificate mark validated on load) are trusted; the
           digest validation is the cached verdict's certificate. *)
        let find sg =
          if certify then Dfm_incr.Cache.find_certified c sg else Dfm_incr.Cache.find c sg
        in
        Array.iteri
          (fun fid sg ->
            if s.st.(fid) = 0 then
              match find sg with
              | Some Dfm_incr.Store.Detected ->
                  if certify then Cert.note_check ~ok:true ~ns:0L;
                  cached.(fid) <- true;
                  s.st.(fid) <- 1
              | Some Dfm_incr.Store.Undetectable ->
                  if certify then Cert.note_check ~ok:true ~ns:0L;
                  cached.(fid) <- true;
                  s.st.(fid) <- 2
              | None -> ())
          sigs;
        sigs
  in
  let rng = Rng.create (seed + 77) in
  if jobs = 1 then begin
    (* Sequential reference path: no pool, no domains. *)
    let blocks = ref 0 in
    let left = ref (unresolved_count s) in
    while !blocks < random_blocks && !left > 0 do
      incr blocks;
      let words = Ls.random_words s.ls rng in
      let good = Ls.run s.ls words in
      sim_range s s.fs ~words ~good ~lo:0 ~hi:nf;
      left := unresolved_count s
    done;
    (* The query count is the number of faults entering the SAT phase
       unresolved — counted up front so a supervised retry of a shard
       (which re-queries only the still-unresolved suffix) cannot skew the
       effort accounting away from the sequential reference. *)
    s.sat_queries <- unresolved_count s;
    ignore (sat_range ?max_conflicts ~sat_mode s ~lo:0 ~hi:nf : int)
  end
  else begin
    (* The UDFM lazy caches must not be forced for the first time inside a
       worker domain. *)
    Dfm_cellmodel.Udfm.preload ();
    let pool = Parallel.get ~jobs () in
    let bounds = shard_bounds ~jobs nf in
    (* Every worker owns a full fault-simulation scratch; only the st/tf
       arrays are shared, at disjoint indices.  Shard tasks are pure
       per-index recomputations into disjoint slots, hence restartable —
       which is what lets the supervised batch retry a shard whose worker
       raised (a poisoned task degrades throughput, never the verdicts). *)
    let shard_fs = Array.map (fun _ -> Fs.prepare nl) bounds in
    let blocks = ref 0 in
    let left = ref (unresolved_count s) in
    while !blocks < random_blocks && !left > 0 do
      incr blocks;
      (* Pattern words and the fault-free simulation are produced once by
         the coordinator, in the same order as the sequential path. *)
      let words = Ls.random_words s.ls rng in
      let good = Ls.run s.ls words in
      ignore
        (Parallel.run_tasks_supervised pool
           (Array.mapi
              (fun k (lo, hi) () ->
                Span.with_ "classify.shard"
                  ~attrs:
                    [ ("phase", "sim"); ("lo", string_of_int lo); ("hi", string_of_int hi) ]
                  (fun () -> sim_range s shard_fs.(k) ~words ~good ~lo ~hi))
              bounds)
          : Parallel.supervision);
      left := unresolved_count s
    done;
    s.sat_queries <- unresolved_count s;
    ignore
      (Parallel.run_tasks_supervised pool
         (Array.mapi
            (fun _k (lo, hi) () ->
              Span.with_ "classify.shard"
                ~attrs:
                  [ ("phase", "sat"); ("lo", string_of_int lo); ("hi", string_of_int hi) ]
                (fun () -> ignore (sat_range ?max_conflicts ~sat_mode s ~lo ~hi : int)))
            bounds)
        : Parallel.supervision)
  end;
  (* Certified mode: every freshly detected fault's witness patterns are
     re-verified by independent resimulation before the verdict is reported
     or published.  Runs in the coordinating domain, in fault order, so the
     check count and any failure are identical for every job count.  Cached
     hits carry no patterns — their certificate is the validated digest. *)
  if certify then
    for fid = 0 to nf - 1 do
      if s.st.(fid) = 1 && not cached.(fid) then verify_detected s fid
    done;
  (* Publish the freshly derived verdicts (never the cached ones again, and
     never Aborted: an abort is a budget artifact, not a semantic fact). *)
  (match cache with
  | None -> ()
  | Some c ->
      Array.iteri
        (fun fid sg ->
          if not cached.(fid) then
            match s.st.(fid) with
            | 1 -> Dfm_incr.Cache.record ~certified:certify c sg Dfm_incr.Store.Detected
            | 2 -> Dfm_incr.Cache.record ~certified:certify c sg Dfm_incr.Store.Undetectable
            | _ -> ())
        sigs);
  finish_counts s

(* ------------------------------------------------------------------ *)
(* Abort-budget escalation                                              *)
(* ------------------------------------------------------------------ *)

type escalation_policy = { factor : int; max_total_conflicts : int }

let default_escalation = { factor = 4; max_total_conflicts = 1_000_000 }

type escalation_stats = {
  rungs : int;
  retried : int;
  resolved : int;
  residual : int;
  effort : int;
  aborted_per_rung : int list;
}

let no_escalation =
  { rungs = 0; retried = 0; resolved = 0; residual = 0; effort = 0; aborted_per_rung = [] }

(* Retry the Aborted faults of [cls] on a geometric conflict-budget ladder
   b_k = max_conflicts * factor^k, charging each query's granted budget
   against [max_total_conflicts].  The solver's conclusions are
   budget-monotone — a verdict reached within c conflicts is reached within
   any budget >= c — so in [Oneshot] mode the ladder's outcome per fault
   equals a single run at the last budget that fault was tried with; cheap
   rungs just resolve the easy aborts before the expensive budgets are
   spent.  In [Incremental] mode one session persists across the whole
   ladder: a retried fault re-solves its still-live activation groups under
   the larger budget without re-encoding, and learnt clauses from earlier
   rungs carry over — so a rung can only be cheaper than the equivalent
   cold run, and a fault may resolve on an earlier rung than it would cold
   (verdicts themselves are budget- and history-independent).  Runs
   entirely in the coordinating domain: abort sets are small and the cache
   (if any) must only ever be touched from here. *)
let escalate ?(policy = default_escalation) ?cache ?sat_mode ?(certify = false) ~max_conflicts
    nl faults (cls : classification) =
  if cls.counts.aborted = 0 then (cls, no_escalation)
  else begin
    Span.with_ "atpg.escalate"
      ~attrs:[ ("aborted", string_of_int cls.counts.aborted) ]
    @@ fun () ->
    let sat_mode = match sat_mode with Some m -> m | None -> default_sat_mode () in
    let factor = max 2 policy.factor in
    let nf = Array.length faults in
    let pending = ref [] in
    for fid = nf - 1 downto 0 do
      if cls.status.(fid) = Aborted then pending := fid :: !pending
    done;
    let s = make_state ~certify nl faults in
    Array.iteri
      (fun fid v ->
        s.st.(fid) <- (match v with Detected -> 1 | Undetectable -> 2 | Aborted -> 3))
      cls.status;
    s.sat_queries <- cls.counts.sat_queries;
    (* Escalated verdicts are published under the *original* budget's
       signatures: the verdict is semantic (budget-independent), and that is
       the key the next same-budget campaign will look up. *)
    let sigs =
      match cache with
      | None -> [||]
      | Some c -> Dfm_incr.Cache.signatures c ~max_conflicts nl faults
    in
    let publish fid v =
      match cache with
      | None -> ()
      | Some c -> Dfm_incr.Cache.record ~certified:certify c sigs.(fid) v
    in
    (* One persistent session for the whole ladder: Unknown verdicts leave
       their activation groups pending, so the next rung re-solves them
       without re-encoding a single clause. *)
    let check =
      match sat_mode with
      | Oneshot -> fun ~max_conflicts f -> Encode.check ~certify ~max_conflicts s.ls f
      | Incremental ->
          let sess = Encode.make_session ~certify s.ls in
          fun ~max_conflicts f -> Encode.check_incr ~max_conflicts sess f
    in
    let budget = ref max_conflicts in
    let effort = ref 0 and retried = ref 0 and rungs = ref 0 and resolved = ref 0 in
    let per_rung = ref [] in
    let exhausted = ref false in
    while (not !exhausted) && !pending <> [] do
      let b = if !budget > max_int / factor then max_int else !budget * factor in
      budget := b;
      if !effort + b > policy.max_total_conflicts then exhausted := true
      else begin
        incr rungs;
        let still = ref [] in
        List.iter
          (fun fid ->
            if !effort + b > policy.max_total_conflicts then begin
              exhausted := true;
              still := fid :: !still
            end
            else begin
              incr retried;
              effort := !effort + b;
              s.sat_queries <- s.sat_queries + 1;
              match check ~max_conflicts:b faults.(fid) with
              | Encode.Tests pats ->
                  (* Certified mode: verify the witness right away — the
                     ladder runs in the coordinating domain, so [s.fs] and
                     [s.ls] are ours to use. *)
                  if certify then begin
                    s.witness.(fid) <-
                      List.map (fun (t : Encode.test) -> t.Encode.values) pats;
                    verify_detected s fid
                  end;
                  s.st.(fid) <- 1;
                  incr resolved;
                  publish fid Dfm_incr.Store.Detected
              | Encode.Undetectable ->
                  s.st.(fid) <- 2;
                  incr resolved;
                  publish fid Dfm_incr.Store.Undetectable
              | Encode.Unknown -> still := fid :: !still
            end)
          !pending;
        pending := List.rev !still;
        per_rung := List.length !pending :: !per_rung
      end
    done;
    Metrics.incr ~by:!rungs m_esc_rungs;
    Metrics.incr ~by:!retried m_esc_retried;
    Metrics.incr ~by:!resolved m_esc_resolved;
    ( finish_counts s,
      {
        rungs = !rungs;
        retried = !retried;
        resolved = !resolved;
        residual = List.length !pending;
        effort = !effort;
        aborted_per_rung = List.rev !per_rung;
      } )
  end

(* ------------------------------------------------------------------ *)
(* Test generation with fault dropping and greedy per-word compaction  *)
(* ------------------------------------------------------------------ *)

let bit b w = Int64.logand (Int64.shift_right_logical w b) 1L = 1L

let generate ?(seed = 1) ?max_conflicts ?sat_mode ?(certify = false) nl faults =
  let s = make_state nl faults in
  let sat_mode = match sat_mode with Some m -> m | None -> default_sat_mode () in
  (* Generation is sequential (coordinator only), so a single session can
     serve every fault's query.  In certified mode the session checks UNSAT
     proofs and SAT models; detected faults are additionally witness-checked
     by the per-word resimulation below (the existing cross-check), which in
     certified mode escalates a miss from a counter to a hard failure. *)
  let sat_check =
    match sat_mode with
    | Oneshot -> fun f -> Encode.check ~certify ?max_conflicts s.ls f
    | Incremental ->
        let sess = lazy (Encode.make_session ~certify s.ls) in
        fun f -> Encode.check_incr ?max_conflicts (Lazy.force sess) f
  in
  let rng = Rng.create (seed + 177) in
  let nf = Array.length faults in
  let tests = ref [] in
  let cross_fail = ref 0 in
  let dws = Array.make nf 0L and iws = Array.make nf 0L in
  (* Turn one SAT test into a 64-variant word, pick the bit position that
     resolves the most faults, record that pattern, and drop. *)
  let apply_test (t : Encode.test) ~target =
    let words =
      Array.of_list
        (List.mapi
           (fun i (_, _) ->
             if t.Encode.cared.(i) then if t.Encode.values.(i) then -1L else 0L
             else Rng.bits64 rng)
           (Ls.inputs s.ls))
    in
    let good = Ls.run s.ls words in
    for fid = 0 to nf - 1 do
      if s.st.(fid) = 0 then begin
        dws.(fid) <- Fs.detect_word s.fs ~good faults.(fid);
        iws.(fid) <- (if is_transition faults.(fid) then Fs.init_word s.fs ~good faults.(fid) else 0L)
      end
      else begin
        dws.(fid) <- 0L;
        iws.(fid) <- 0L
      end
    done;
    (* Count prospective resolutions per bit position. *)
    let gain = Array.make 64 0 in
    for fid = 0 to nf - 1 do
      if s.st.(fid) = 0 then begin
        let w =
          if is_transition faults.(fid) then begin
            (* A bit helps if it completes the pair. *)
            if s.tf_init.(fid) then dws.(fid)
            else if s.tf_stuck.(fid) then iws.(fid)
            else Int64.logand dws.(fid) iws.(fid)
          end
          else dws.(fid)
        in
        let w = ref w in
        while !w <> 0L do
          let lsb = Int64.logand !w (Int64.neg !w) in
          let b = ref 0 in
          let x = ref lsb in
          while Int64.logand !x 1L = 0L do
            x := Int64.shift_right_logical !x 1;
            incr b
          done;
          gain.(!b) <- gain.(!b) + 1;
          w := Int64.logxor !w lsb
        done
      end
    done;
    let best = ref 0 in
    for b = 1 to 63 do
      if gain.(b) > gain.(!best) then best := b
    done;
    let b = !best in
    (* The target must be covered at the chosen bit (its cared inputs are
       identical in every bit position); a miss is an engine disagreement. *)
    (if s.st.(target) = 0 then
       let covered =
         if is_transition faults.(target) then bit b dws.(target) || bit b iws.(target)
         else bit b dws.(target)
       in
       if not covered then incr cross_fail);
    tests := Ls.pattern_of_words words b :: !tests;
    let mask = Int64.shift_left 1L b in
    for fid = 0 to nf - 1 do
      if s.st.(fid) = 0 then begin
        if is_transition faults.(fid) then begin
          if Int64.logand mask dws.(fid) <> 0L then s.tf_stuck.(fid) <- true;
          if Int64.logand mask iws.(fid) <> 0L then s.tf_init.(fid) <- true;
          if s.tf_stuck.(fid) && s.tf_init.(fid) then resolve s fid 1
        end
        else if Int64.logand mask dws.(fid) <> 0L then resolve s fid 1
      end
    done
  in
  for fid = 0 to nf - 1 do
    if s.st.(fid) = 0 then begin
      s.sat_queries <- s.sat_queries + 1;
      match sat_check faults.(fid) with
      | Encode.Undetectable -> resolve s fid 2
      | Encode.Unknown -> resolve s fid 3
      | Encode.Tests pats ->
          List.iter (fun t -> apply_test t ~target:fid) pats;
          (* The SAT engine proved detectability; if simulation-based dropping
             somehow missed the target, trust the proof but flag it — except
             in certified mode, where an unreproducible witness is fatal. *)
          if s.st.(fid) = 0 then begin
            incr cross_fail;
            if certify then
              raise
                (Cert.Check_failed
                   (Printf.sprintf
                      "generated test for fault %d (%s) does not reproduce detection" fid
                      (F.describe nl faults.(fid))));
            resolve s fid 1
          end
          else if certify then Cert.note_check ~ok:true ~ns:0L
    end
  done;
  { classification = finish_counts s; tests = List.rev !tests; cross_check_failures = !cross_fail }

let coverage c = 100.0 *. (1.0 -. (float_of_int c.undetectable /. float_of_int (max 1 c.total)))

module N = Dfm_netlist.Netlist
module Cell = Dfm_netlist.Cell
module Solver = Dfm_sat.Solver
module Tseitin = Dfm_sat.Tseitin
module Incr = Dfm_sat.Incremental
module Cert = Dfm_sat.Cert

type verdict =
  | Equivalent
  | Different of string
  | Interface_mismatch of string

(* Encode the whole combinational view of [t] into [solver], with
   controllable points taken from [var_of_label].  Returns the variable of
   each net. *)
let encode solver t var_of_label =
  let vars = Array.make (N.num_nets t) 0 in
  List.iter (fun (label, n) -> vars.(n) <- var_of_label label) (N.input_nets t);
  Array.iter
    (fun (nn : N.net) ->
      match nn.N.driver with
      | N.Const b ->
          let v = Solver.new_var solver in
          vars.(nn.N.net_id) <- v;
          if b then Tseitin.const_true solver v else Tseitin.const_false solver v
      | N.Pi _ | N.Gate_out _ -> ())
    t.N.nets;
  Array.iter
    (fun gid ->
      let g = N.gate t gid in
      let out = Solver.new_var solver in
      vars.(g.N.fanout) <- out;
      let ins = Array.map (fun fn -> vars.(fn)) g.N.fanins in
      Tseitin.of_truthtable solver ~out ins g.N.cell.Cell.func)
    (N.topo_order t);
  vars

let check ?(certify = false) ?counted t1 t2 =
  let labels l = List.map fst l |> List.sort compare in
  let in1 = labels (N.input_nets t1) and in2 = labels (N.input_nets t2) in
  let out1 = labels (N.observe_nets t1) and out2 = labels (N.observe_nets t2) in
  if in1 <> in2 then Interface_mismatch "inputs"
  else if out1 <> out2 then Interface_mismatch "outputs"
  else begin
    let sess = Incr.create ?counted () in
    let solver = Incr.solver sess in
    let cert =
      if certify then begin
        let c = Cert.create () in
        Cert.attach c solver;
        Some c
      end
      else None
    in
    let var_tbl = Hashtbl.create 64 in
    List.iter
      (fun label ->
        if not (Hashtbl.mem var_tbl label) then
          Hashtbl.add var_tbl label (Solver.new_var solver))
      in1;
    let var_of_label l = Hashtbl.find var_tbl l in
    let v1 = encode solver t1 var_of_label in
    let v2 = encode solver t2 var_of_label in
    (* Check output labels one at a time so a difference can be named; each
       label is an activation-guarded query on the shared session, so the
       per-label difference constraints never pollute each other and the
       learnt clauses of a proved-equivalent label speed up the next. *)
    let rec go = function
      | [] -> Equivalent
      | label :: rest ->
          let n1 = List.assoc label (N.observe_nets t1) in
          let n2 = List.assoc label (N.observe_nets t2) in
          let act = Incr.new_activation sess in
          let d = Solver.new_var solver in
          Tseitin.xor_ ~act solver ~out:d v1.(n1) v2.(n2);
          Incr.add_guarded sess ~act [ d ];
          (match Incr.solve sess ~act with
          | Solver.Sat ->
              (* Certified mode: the distinguishing assignment must satisfy
                 the traced miter clauses before we report a difference. *)
              (match cert with
              | Some c -> Cert.check_model c ~assumptions:[ act ] ~value:(Solver.value solver)
              | None -> ());
              Different label
          | Solver.Unsat ->
              (* Certified mode: replay this label's equivalence proof
                 through the independent checker before trusting it. *)
              (match cert with
              | Some c -> Cert.check_unsat c ~assumptions:[ act ]
              | None -> ());
              Incr.retire sess ~act ~locals:[ d ];
              go rest
          | Solver.Unknown -> Different (label ^ " (unknown)"))
    in
    go out1
  end

module F = Dfm_faults.Fault
module Ls = Dfm_sim.Logic_sim
module Fs = Dfm_sim.Fault_sim

let is_tf (f : F.t) = match f.F.kind with F.Transition _ -> true | _ -> false

(* Per-test detection profile: which faults' frame-2 (stuck) components and
   frame-1 (init) components each test covers.  For non-transition faults
   only the detect component exists. *)
let profiles nl ~faults ~tests =
  let ls = Ls.prepare nl in
  let fs = Fs.prepare nl in
  List.map
    (fun pattern ->
      let good = Ls.run ls (Ls.words_of_pattern pattern) in
      Array.map
        (fun (f : F.t) ->
          let d = Fs.detect_word fs ~good f <> 0L in
          let i = is_tf f && Fs.init_word fs ~good f <> 0L in
          (d, i))
        faults)
    tests

let coverage_of_profiles faults profs =
  let n = Array.length faults in
  let stuck = Array.make n false and init = Array.make n false in
  List.iter
    (fun prof ->
      Array.iteri
        (fun fid (d, i) ->
          if d then stuck.(fid) <- true;
          if i then init.(fid) <- true)
        prof)
    profs;
  let covered = ref 0 in
  Array.iteri
    (fun fid f -> if stuck.(fid) && ((not (is_tf f)) || init.(fid)) then incr covered)
    faults;
  !covered

let detects nl ~faults ~tests = coverage_of_profiles faults (profiles nl ~faults ~tests)

let reverse_order nl ~faults ~tests =
  let profs = Array.of_list (profiles nl ~faults ~tests) in
  let tests_arr = Array.of_list tests in
  let n_tests = Array.length tests_arr in
  let nf = Array.length faults in
  (* Which components the full set covers (a component missing from the full
     set can never become a reason to keep a test). *)
  let stuck_needed = Array.make nf false and init_needed = Array.make nf false in
  Array.iter
    (fun prof ->
      Array.iteri
        (fun fid (d, i) ->
          if d then stuck_needed.(fid) <- true;
          if i then init_needed.(fid) <- true)
        prof)
    profs;
  (* A fault is fully coverable when its stuck component is covered and, for
     a transition fault, its init component too. *)
  let coverable fid =
    stuck_needed.(fid) && ((not (is_tf faults.(fid))) || init_needed.(fid))
  in
  (* Reverse pass: keep a test iff it contributes a still-missing component
     of a coverable fault. *)
  let stuck_have = Array.make nf false and init_have = Array.make nf false in
  let keep = Array.make n_tests false in
  for t = n_tests - 1 downto 0 do
    let contributes = ref false in
    Array.iteri
      (fun fid (d, i) ->
        if coverable fid then begin
          if d && not stuck_have.(fid) then contributes := true;
          if is_tf faults.(fid) && i && not init_have.(fid) then contributes := true
        end)
      profs.(t);
    if !contributes then begin
      keep.(t) <- true;
      Array.iteri
        (fun fid (d, i) ->
          if d then stuck_have.(fid) <- true;
          if i then init_have.(fid) <- true)
        profs.(t)
    end
  done;
  List.filteri (fun t _ -> keep.(t)) (Array.to_list tests_arr)

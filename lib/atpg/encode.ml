module N = Dfm_netlist.Netlist
module Cell = Dfm_netlist.Cell
module F = Dfm_faults.Fault
module Solver = Dfm_sat.Solver
module Tseitin = Dfm_sat.Tseitin

type test = { values : bool array; cared : bool array }

type verdict = Tests of test list | Undetectable | Unknown

(* One miter-building context per SAT query. *)
type ctx = {
  nl : N.t;
  solver : Solver.t;
  good : int array;     (* net id -> good var (0 = not yet encoded) *)
  faulty : int array;   (* net id -> faulty var (0 = none / equal to good) *)
  is_observe : bool array;
}

let make_ctx ls =
  let nl = Dfm_sim.Logic_sim.netlist ls in
  let is_observe = Array.make (N.num_nets nl) false in
  List.iter (fun (_, n) -> is_observe.(n) <- true) (Dfm_sim.Logic_sim.observes ls);
  {
    nl;
    solver = Solver.create ();
    good = Array.make (N.num_nets nl) 0;
    faulty = Array.make (N.num_nets nl) 0;
    is_observe;
  }

(* Encode the fault-free function of a net, recursively pulling in its
   transitive fanin.  Nets driven by flip-flops are free variables (scan
   makes them controllable). *)
let rec good_var ctx n =
  if ctx.good.(n) <> 0 then ctx.good.(n)
  else begin
    let v = Solver.new_var ctx.solver in
    ctx.good.(n) <- v;
    (match (N.net ctx.nl n).N.driver with
    | N.Pi _ -> ()
    | N.Const b -> if b then Tseitin.const_true ctx.solver v else Tseitin.const_false ctx.solver v
    | N.Gate_out g ->
        let gg = N.gate ctx.nl g in
        if not gg.N.cell.Cell.is_seq then begin
          let ins = Array.map (fun fn -> good_var ctx fn) gg.N.fanins in
          Tseitin.of_truthtable ctx.solver ~out:v ins gg.N.cell.Cell.func
        end);
    v
  end

(* The transitive fanout of the seed nets through combinational gates,
   returned as (cone net set, member gates in topo order). *)
let fanout_cone ctx ls seeds =
  let in_cone = Hashtbl.create 64 in
  List.iter (fun n -> Hashtbl.replace in_cone n ()) seeds;
  let order = Dfm_sim.Logic_sim.topo ls in
  let cone_gates = ref [] in
  Array.iter
    (fun gid ->
      let g = N.gate ctx.nl gid in
      if
        (not (Hashtbl.mem in_cone g.N.fanout))
        && Array.exists (fun fn -> Hashtbl.mem in_cone fn) g.N.fanins
      then begin
        Hashtbl.replace in_cone g.N.fanout ();
        cone_gates := gid :: !cone_gates
      end)
    order;
  (in_cone, List.rev !cone_gates)

(* Faulty copy of every cone gate (excluding the seeds, whose faulty vars the
   caller constrains), plus the difference-at-observable-point requirement. *)
let build_cone_and_observe ctx ls seeds =
  let in_cone, cone_gates = fanout_cone ctx ls seeds in
  List.iter
    (fun gid ->
      let g = N.gate ctx.nl gid in
      let out = g.N.fanout in
      let v = Solver.new_var ctx.solver in
      ctx.faulty.(out) <- v;
      let ins =
        Array.map
          (fun fn -> if ctx.faulty.(fn) <> 0 then ctx.faulty.(fn) else good_var ctx fn)
          g.N.fanins
      in
      Tseitin.of_truthtable ctx.solver ~out:v ins g.N.cell.Cell.func)
    cone_gates;
  let diffs = ref [] in
  Hashtbl.iter
    (fun n () ->
      if ctx.is_observe.(n) then begin
        let d = Solver.new_var ctx.solver in
        Tseitin.xor_ ctx.solver ~out:d (good_var ctx n) ctx.faulty.(n);
        diffs := d :: !diffs
      end)
    in_cone;
  match !diffs with
  | [] -> false  (* no observable point reachable: trivially undetectable *)
  | ds ->
      Solver.add_clause ctx.solver ds;
      true

let extract_tests ctx ls =
  let ins = Dfm_sim.Logic_sim.inputs ls in
  let values =
    Array.of_list
      (List.map
         (fun (_, n) -> ctx.good.(n) <> 0 && Solver.value ctx.solver ctx.good.(n))
         ins)
  in
  let cared = Array.of_list (List.map (fun (_, n) -> ctx.good.(n) <> 0) ins) in
  { values; cared }

(* Pattern-matching constraint: the good values of a gate's fanins equal one
   of the given minterms. *)
let add_activation_minterms ctx (g : N.gate) minterms =
  let n = Array.length g.N.fanins in
  let fanin_vars = Array.map (fun fn -> good_var ctx fn) g.N.fanins in
  let selectors =
    List.map
      (fun m ->
        let s = Solver.new_var ctx.solver in
        let lits =
          Array.to_list
            (Array.mapi (fun k v -> if (m lsr k) land 1 = 1 then v else -v) fanin_vars)
        in
        Tseitin.and_ ctx.solver ~out:s lits;
        ignore n;
        s)
      minterms
  in
  Solver.add_clause ctx.solver selectors

let lit_for_value var value = if value then var else -var

let solve_to_verdict ?max_conflicts ctx ls =
  match Solver.solve ?max_conflicts ctx.solver with
  | Solver.Sat -> Tests [ extract_tests ctx ls ]
  | Solver.Unsat -> Undetectable
  | Solver.Unknown -> Unknown

(* A pure controllability query: can [net] take [value]? *)
let controllability ?max_conflicts ls net value =
  let ctx = make_ctx ls in
  let v = good_var ctx net in
  Solver.add_clause ctx.solver [ lit_for_value v value ];
  solve_to_verdict ?max_conflicts ctx ls

let is_seq_gate nl g = (N.gate nl g).N.cell.Cell.is_seq

let forced = function F.Sa0 -> false | F.Sa1 -> true

(* Stuck-at detection query (also the frame-2 component of transitions). *)
let stuck_query ?max_conflicts ls loc pol =
  let nl = Dfm_sim.Logic_sim.netlist ls in
  match loc with
  | F.On_pin (g, pin) when is_seq_gate nl g ->
      (* The flop captures the forced value; detection = putting the opposite
         value on D. *)
      controllability ?max_conflicts ls (N.gate nl g).N.fanins.(pin) (not (forced pol))
  | F.On_net n ->
      let ctx = make_ctx ls in
      let fv = Solver.new_var ctx.solver in
      ctx.faulty.(n) <- fv;
      Solver.add_clause ctx.solver [ lit_for_value fv (forced pol) ];
      (* Activation: the good value differs from the forced one. *)
      Solver.add_clause ctx.solver [ lit_for_value (good_var ctx n) (not (forced pol)) ];
      (* Seed nets are part of the cone, so an observable seed (PO or flop
         D net) contributes its own difference variable. *)
      if build_cone_and_observe ctx ls [ n ] then solve_to_verdict ?max_conflicts ctx ls
      else Undetectable
  | F.On_pin (g, pin) ->
      let ctx = make_ctx ls in
      let gg = N.gate nl g in
      let out = gg.N.fanout in
      let fv = Solver.new_var ctx.solver in
      ctx.faulty.(out) <- fv;
      (* Faulty host-gate evaluation with the pin forced. *)
      let ins =
        Array.mapi
          (fun k fn ->
            if k = pin then (
              let c = Solver.new_var ctx.solver in
              Solver.add_clause ctx.solver [ lit_for_value c (forced pol) ];
              c)
            else good_var ctx fn)
          gg.N.fanins
      in
      Tseitin.of_truthtable ctx.solver ~out:fv ins gg.N.cell.Cell.func;
      (* Activation: the pin's good value differs from the forced one. *)
      Solver.add_clause ctx.solver
        [ lit_for_value (good_var ctx gg.N.fanins.(pin)) (not (forced pol)) ];
      if build_cone_and_observe ctx ls [ out ] || ctx.is_observe.(out) then
        solve_to_verdict ?max_conflicts ctx ls
      else Undetectable

let transition_components tr =
  (* (frame-1 required initial value, frame-2 stuck polarity) *)
  match tr with F.Slow_to_rise -> (false, F.Sa0) | F.Slow_to_fall -> (true, F.Sa1)

let loc_net nl = function
  | F.On_net n -> n
  | F.On_pin (g, pin) -> (N.gate nl g).N.fanins.(pin)

let check ?max_conflicts ls (f : F.t) =
  let nl = Dfm_sim.Logic_sim.netlist ls in
  match f.F.kind with
  | F.Stuck (loc, pol) -> stuck_query ?max_conflicts ls loc pol
  | F.Transition (loc, tr) -> (
      let init_value, pol = transition_components tr in
      match controllability ?max_conflicts ls (loc_net nl loc) init_value with
      | Undetectable -> Undetectable
      | Unknown -> Unknown
      | Tests init_tests -> (
          match stuck_query ?max_conflicts ls loc pol with
          | Undetectable -> Undetectable
          | Unknown -> Unknown
          | Tests stuck_tests -> Tests (init_tests @ stuck_tests)))
  | F.Bridge (n1, n2, k) ->
      let ctx = make_ctx ls in
      let g1 = good_var ctx n1 and g2 = good_var ctx n2 in
      let r = Solver.new_var ctx.solver in
      (match k with
      | F.Wired_and -> Tseitin.and_ ctx.solver ~out:r [ g1; g2 ]
      | F.Wired_or -> Tseitin.or_ ctx.solver ~out:r [ g1; g2 ]);
      ctx.faulty.(n1) <- r;
      ctx.faulty.(n2) <- r;
      (* Activation: the bridged nets must disagree. *)
      let d = Solver.new_var ctx.solver in
      Tseitin.xor_ ctx.solver ~out:d g1 g2;
      Solver.add_clause ctx.solver [ d ];
      if build_cone_and_observe ctx ls [ n1; n2 ] then
        solve_to_verdict ?max_conflicts ctx ls
      else Undetectable
  | F.Internal (g, entry_idx) ->
      let gg = N.gate nl g in
      let u = Dfm_cellmodel.Udfm.for_cell gg.N.cell.Cell.name in
      let entry = List.nth u.Dfm_cellmodel.Udfm.entries entry_idx in
      let activation = entry.Dfm_cellmodel.Udfm.activation in
      if gg.N.cell.Cell.is_seq then begin
        (* Activation over the D value; the corrupted captured value is
           observed directly on the scan path. *)
        let ctx = make_ctx ls in
        let d = good_var ctx gg.N.fanins.(0) in
        let lits = List.map (fun m -> lit_for_value d (m land 1 = 1)) activation in
        Solver.add_clause ctx.solver lits;
        solve_to_verdict ?max_conflicts ctx ls
      end
      else begin
        let ctx = make_ctx ls in
        let out = gg.N.fanout in
        add_activation_minterms ctx gg activation;
        (* When activated the defective cell output is the complement of the
           good output (see Udfm). *)
        let fv = Solver.new_var ctx.solver in
        ctx.faulty.(out) <- fv;
        Tseitin.not_ ctx.solver ~out:fv (good_var ctx out);
        if build_cone_and_observe ctx ls [ out ] then
          solve_to_verdict ?max_conflicts ctx ls
        else Undetectable
      end

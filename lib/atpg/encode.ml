module N = Dfm_netlist.Netlist
module Cell = Dfm_netlist.Cell
module F = Dfm_faults.Fault
module Solver = Dfm_sat.Solver
module Tseitin = Dfm_sat.Tseitin
module Incr = Dfm_sat.Incremental
module Cert = Dfm_sat.Cert

type test = { values : bool array; cared : bool array }

type verdict = Tests of test list | Undetectable | Unknown

(* A shared propagation cone: the faulty fanout copy plus the
   difference-at-observable-point requirement for one set of seed nets,
   encoded once under its own activation literal.  Faults at the same site
   — both stuck-at polarities, every UDFM entry of a gate, the frame-2
   part of its transitions — reuse one cone, so the clauses are built once
   and, more importantly, learnt clauses about sensitizing a path through
   the cone survive from one fault to the next.  [seed_fv] are the shared
   faulty variables of the seed nets; each query binds its own fault
   semantics to them under its own activation literal, so exactly one
   binding is live per solve. *)
type cone_group = {
  cone_act : int;
  seed_fv : (int * int) list;  (* seed net -> shared faulty var *)
  cone_vars : int list;        (* every cone-owned var, pinned on eviction *)
  cone_observable : bool;      (* reaches at least one observable point *)
  mutable cone_refs : int;     (* pending query parts bound to this cone *)
}

(* Miter-building context over one incremental session.  The good-circuit
   encoding ([good]) is permanent and shared by every query of the session;
   propagation cones are shared per fault site ([cones], bounded LRU);
   everything else a single fault adds — its binding to the cone's faulty
   seeds, activation constraints — is guarded by the query's activation
   literal ([guard]) and registered in [locals] so it can be retired
   wholesale.  [faulty] and [touched] are scratch for cone construction. *)
type ctx = {
  nl : N.t;
  sess : Incr.session;
  good : int array;     (* net id -> good var (0 = not yet encoded) *)
  faulty : int array;   (* net id -> faulty var (0 = none / equal to good) *)
  is_observe : bool array;
  cones : (int list, cone_group) Hashtbl.t;  (* sorted seed nets -> cone *)
  mutable cone_lru : int list list;          (* cone keys, most recent first *)
  mutable guard : int option;  (* activation literal of the query being encoded *)
  mutable locals : int list;   (* private vars of the query being encoded *)
  mutable touched : int list;  (* nets whose [faulty] slot the cone build set *)
  mutable qcone : cone_group option;  (* cone used by the query being encoded *)
  cert : Cert.t option;
      (* certification session attached to [sess]'s solver: every clause and
         learnt step of this context is traced into it, and each query's
         verdict is checked against it before being reported *)
}

let make_ctx ?(certify = false) ?counted ls =
  let nl = Dfm_sim.Logic_sim.netlist ls in
  let is_observe = Array.make (N.num_nets nl) false in
  List.iter (fun (_, n) -> is_observe.(n) <- true) (Dfm_sim.Logic_sim.observes ls);
  let sess = Incr.create ?counted () in
  let cert =
    if certify then begin
      let c = Cert.create () in
      Cert.attach c (Incr.solver sess);
      Some c
    end
    else None
  in
  {
    nl;
    sess;
    good = Array.make (N.num_nets nl) 0;
    faulty = Array.make (N.num_nets nl) 0;
    is_observe;
    cones = Hashtbl.create 16;
    cone_lru = [];
    guard = None;
    locals = [];
    touched = [];
    qcone = None;
    cert;
  }

let solver ctx = Incr.solver ctx.sess

(* A clause of the query being encoded: guarded by the activation literal. *)
let qcl ctx lits =
  match ctx.guard with
  | Some a -> Incr.add_guarded ctx.sess ~act:a lits
  | None -> Incr.add_permanent ctx.sess lits

(* A private variable of the query being encoded. *)
let qvar ctx =
  let v = Solver.new_var (solver ctx) in
  ctx.locals <- v :: ctx.locals;
  v

let set_faulty ctx n v =
  ctx.faulty.(n) <- v;
  ctx.touched <- n :: ctx.touched

(* Encode the fault-free function of a net, recursively pulling in its
   transitive fanin.  Nets driven by flip-flops are free variables (scan
   makes them controllable).  The encoding is permanent — never guarded —
   so later queries of the session reuse it as-is. *)
let rec good_var ctx n =
  if ctx.good.(n) <> 0 then ctx.good.(n)
  else begin
    let v = Solver.new_var (solver ctx) in
    ctx.good.(n) <- v;
    (match (N.net ctx.nl n).N.driver with
    | N.Pi _ -> ()
    | N.Const b ->
        if b then Tseitin.const_true (solver ctx) v
        else Tseitin.const_false (solver ctx) v
    | N.Gate_out g ->
        let gg = N.gate ctx.nl g in
        if not gg.N.cell.Cell.is_seq then begin
          let ins = Array.map (fun fn -> good_var ctx fn) gg.N.fanins in
          Tseitin.of_truthtable (solver ctx) ~out:v ins gg.N.cell.Cell.func
        end);
    v
  end

(* The transitive fanout of the seed nets through combinational gates,
   returned as (cone net set, member gates in topo order). *)
let fanout_cone ctx ls seeds =
  let in_cone = Hashtbl.create 64 in
  List.iter (fun n -> Hashtbl.replace in_cone n ()) seeds;
  let order = Dfm_sim.Logic_sim.topo ls in
  let cone_gates = ref [] in
  Array.iter
    (fun gid ->
      let g = N.gate ctx.nl gid in
      if
        (not (Hashtbl.mem in_cone g.N.fanout))
        && Array.exists (fun fn -> Hashtbl.mem in_cone fn) g.N.fanins
      then begin
        Hashtbl.replace in_cone g.N.fanout ();
        cone_gates := gid :: !cone_gates
      end)
    order;
  (in_cone, List.rev !cone_gates)

(* Faulty copy of every cone gate (excluding the seeds, whose faulty vars the
   caller constrains), plus the difference-at-observable-point requirement.
   All of it belongs to the current query: guarded and local. *)
let build_cone_and_observe ctx ls seeds =
  let in_cone, cone_gates = fanout_cone ctx ls seeds in
  List.iter
    (fun gid ->
      let g = N.gate ctx.nl gid in
      let out = g.N.fanout in
      let v = qvar ctx in
      set_faulty ctx out v;
      let ins =
        Array.map
          (fun fn -> if ctx.faulty.(fn) <> 0 then ctx.faulty.(fn) else good_var ctx fn)
          g.N.fanins
      in
      Tseitin.of_truthtable ?act:ctx.guard (solver ctx) ~out:v ins g.N.cell.Cell.func)
    cone_gates;
  let diffs = ref [] in
  Hashtbl.iter
    (fun n () ->
      if ctx.is_observe.(n) then begin
        let d = qvar ctx in
        Tseitin.xor_ ?act:ctx.guard (solver ctx) ~out:d (good_var ctx n) ctx.faulty.(n);
        diffs := d :: !diffs
      end)
    in_cone;
  match !diffs with
  | [] -> false  (* no observable point reachable: trivially undetectable *)
  | ds ->
      qcl ctx ds;
      true

(* Live cones are bounded: once [max_live_cones] are live, the
   least-recently-used cone with no pending queries is retired (activation
   permanently off, variables pinned), exactly like a finished query.
   Fault lists keep the entries of one site together, so a small window
   captures nearly all of the reuse while the session stays free of
   unconstrained-variable bloat.  Retiring a cone is sound for the same
   reason retiring a query is: every clause over a cone variable carries
   [¬cone_act] — or belongs to an already-retired query — so pinning the
   variables constrains nothing that is still reachable. *)
let max_live_cones = 8

let cone_for ctx ls seeds =
  let key = List.sort_uniq compare seeds in
  let g =
    match Hashtbl.find_opt ctx.cones key with
    | Some g ->
        ctx.cone_lru <- key :: List.filter (fun k -> k <> key) ctx.cone_lru;
        g
    | None ->
        if Hashtbl.length ctx.cones >= max_live_cones then begin
          match
            List.find_opt
              (fun k ->
                match Hashtbl.find_opt ctx.cones k with
                | Some g -> g.cone_refs = 0
                | None -> false)
              (List.rev ctx.cone_lru)
          with
          | Some victim ->
              let v = Hashtbl.find ctx.cones victim in
              Incr.retire ctx.sess ~act:v.cone_act ~locals:v.cone_vars;
              Hashtbl.remove ctx.cones victim;
              ctx.cone_lru <- List.filter (fun k -> k <> victim) ctx.cone_lru
          | None -> ()
        end;
        let cone_act = Incr.new_activation ctx.sess in
        let saved_guard = ctx.guard and saved_locals = ctx.locals in
        ctx.guard <- Some cone_act;
        ctx.locals <- [];
        let seed_fv =
          List.map
            (fun n ->
              let v = qvar ctx in
              set_faulty ctx n v;
              (n, v))
            key
        in
        let cone_observable = build_cone_and_observe ctx ls key in
        let cone_vars = ctx.locals in
        ctx.guard <- saved_guard;
        ctx.locals <- saved_locals;
        let g = { cone_act; seed_fv; cone_vars; cone_observable; cone_refs = 0 } in
        Hashtbl.replace ctx.cones key g;
        ctx.cone_lru <- key :: ctx.cone_lru;
        g
  in
  ctx.qcone <- Some g;
  g

let extract_tests ctx ls =
  let ins = Dfm_sim.Logic_sim.inputs ls in
  let values =
    Array.of_list
      (List.map
         (fun (_, n) -> ctx.good.(n) <> 0 && Solver.value (solver ctx) ctx.good.(n))
         ins)
  in
  let cared = Array.of_list (List.map (fun (_, n) -> ctx.good.(n) <> 0) ins) in
  { values; cared }

(* Pattern-matching constraint: the good values of a gate's fanins equal one
   of the given minterms. *)
let add_activation_minterms ctx (g : N.gate) minterms =
  let n = Array.length g.N.fanins in
  let fanin_vars = Array.map (fun fn -> good_var ctx fn) g.N.fanins in
  let selectors =
    List.map
      (fun m ->
        let s = qvar ctx in
        let lits =
          Array.to_list
            (Array.mapi (fun k v -> if (m lsr k) land 1 = 1 then v else -v) fanin_vars)
        in
        Tseitin.and_ ?act:ctx.guard (solver ctx) ~out:s lits;
        ignore n;
        s)
      minterms
  in
  qcl ctx selectors

let lit_for_value var value = if value then var else -var

let is_seq_gate nl g = (N.gate nl g).N.cell.Cell.is_seq

let forced = function F.Sa0 -> false | F.Sa1 -> true

(* ------------------------------------------------------------------ *)
(* Per-query encoders.  Each returns [true] when the query has at least  *)
(* one observable difference point (i.e. is worth solving).             *)
(* ------------------------------------------------------------------ *)

(* A pure controllability query: can [net] take [value]? *)
let encode_controllability net value ctx _ls =
  qcl ctx [ lit_for_value (good_var ctx net) value ];
  true

(* Stuck-at detection query (also the frame-2 component of transitions). *)
let encode_stuck loc pol ctx ls =
  let nl = ctx.nl in
  match loc with
  | F.On_pin (g, pin) when is_seq_gate nl g ->
      (* The flop captures the forced value; detection = putting the opposite
         value on D. *)
      encode_controllability (N.gate nl g).N.fanins.(pin) (not (forced pol)) ctx ls
  | F.On_net n ->
      (* Seed nets are part of the cone, so an observable seed (PO or flop
         D net) contributes its own difference variable. *)
      let cone = cone_for ctx ls [ n ] in
      let fv = List.assoc n cone.seed_fv in
      qcl ctx [ lit_for_value fv (forced pol) ];
      (* Activation: the good value differs from the forced one. *)
      qcl ctx [ lit_for_value (good_var ctx n) (not (forced pol)) ];
      cone.cone_observable
  | F.On_pin (g, pin) ->
      let gg = N.gate nl g in
      let out = gg.N.fanout in
      let cone = cone_for ctx ls [ out ] in
      let fv = List.assoc out cone.seed_fv in
      (* Faulty host-gate evaluation with the pin forced, driving the
         cone's shared faulty output under this query's guard. *)
      let ins =
        Array.mapi
          (fun k fn ->
            if k = pin then (
              let c = qvar ctx in
              qcl ctx [ lit_for_value c (forced pol) ];
              c)
            else good_var ctx fn)
          gg.N.fanins
      in
      Tseitin.of_truthtable ?act:ctx.guard (solver ctx) ~out:fv ins gg.N.cell.Cell.func;
      (* Activation: the pin's good value differs from the forced one. *)
      qcl ctx [ lit_for_value (good_var ctx gg.N.fanins.(pin)) (not (forced pol)) ];
      cone.cone_observable

let encode_bridge n1 n2 k ctx ls =
  let g1 = good_var ctx n1 and g2 = good_var ctx n2 in
  let cone = cone_for ctx ls [ n1; n2 ] in
  let fv1 = List.assoc n1 cone.seed_fv and fv2 = List.assoc n2 cone.seed_fv in
  (* The wired function drives both bridged nets' shared faulty vars. *)
  let r = qvar ctx in
  (match k with
  | F.Wired_and -> Tseitin.and_ ?act:ctx.guard (solver ctx) ~out:r [ g1; g2 ]
  | F.Wired_or -> Tseitin.or_ ?act:ctx.guard (solver ctx) ~out:r [ g1; g2 ]);
  qcl ctx [ -fv1; r ];
  qcl ctx [ fv1; -r ];
  qcl ctx [ -fv2; r ];
  qcl ctx [ fv2; -r ];
  (* Activation: the bridged nets must disagree. *)
  let d = qvar ctx in
  Tseitin.xor_ ?act:ctx.guard (solver ctx) ~out:d g1 g2;
  qcl ctx [ d ];
  cone.cone_observable

let encode_internal g entry_idx ctx ls =
  let gg = N.gate ctx.nl g in
  let u = Dfm_cellmodel.Udfm.for_cell gg.N.cell.Cell.name in
  let entry = List.nth u.Dfm_cellmodel.Udfm.entries entry_idx in
  let activation = entry.Dfm_cellmodel.Udfm.activation in
  if gg.N.cell.Cell.is_seq then begin
    (* Activation over the D value; the corrupted captured value is
       observed directly on the scan path. *)
    let d = good_var ctx gg.N.fanins.(0) in
    let lits = List.map (fun m -> lit_for_value d (m land 1 = 1)) activation in
    qcl ctx lits;
    true
  end
  else begin
    let out = gg.N.fanout in
    add_activation_minterms ctx gg activation;
    (* When activated the defective cell output is the complement of the
       good output (see Udfm); the binding to the cone's shared faulty
       output is guarded by this query. *)
    let cone = cone_for ctx ls [ out ] in
    let fv = List.assoc out cone.seed_fv in
    Tseitin.not_ ?act:ctx.guard (solver ctx) ~out:fv (good_var ctx out);
    cone.cone_observable
  end

let transition_components tr =
  (* (frame-1 required initial value, frame-2 stuck polarity) *)
  match tr with F.Slow_to_rise -> (false, F.Sa0) | F.Slow_to_fall -> (true, F.Sa1)

let loc_net nl = function
  | F.On_net n -> n
  | F.On_pin (g, pin) -> (N.gate nl g).N.fanins.(pin)

(* ------------------------------------------------------------------ *)
(* Sessions                                                            *)
(* ------------------------------------------------------------------ *)

(* A query part still awaiting a verdict: its activation literal stays live
   so an escalated re-check re-solves without re-encoding.  The cone it is
   bound to (if any) is ref-counted so eviction never disables it. *)
type part = { act : int; cone : cone_group option; locals : int list }

type session = {
  ctx : ctx;
  ls : Dfm_sim.Logic_sim.t;
  pending : (F.t * int, part) Hashtbl.t;
  results : (F.t * int, test) Hashtbl.t;
      (* Sat parts of not-yet-fully-resolved faults (transition frame-1
         solved, frame-2 still pending) — kept so a re-check does not
         re-derive them, dropped once the fault's verdict is final. *)
}

let make_session ?certify ?counted ls =
  {
    ctx = make_ctx ?certify ?counted ls;
    ls;
    pending = Hashtbl.create 64;
    results = Hashtbl.create 16;
  }

let session_certified sess = sess.ctx.cert <> None

let session_solver sess = solver sess.ctx
let session_stats sess = Incr.stats sess.ctx.sess
let pending_parts sess = Hashtbl.length sess.pending
let live_cones sess = Hashtbl.length sess.ctx.cones

(* Run one query part: reuse its live activation group if the part is
   pending from an earlier (budget-exhausted) attempt, otherwise encode it
   fresh under a new activation literal.  Final verdicts retire the group;
   Unknown keeps it pending for the next, larger budget. *)
let run_part ?max_conflicts sess f idx encode =
  let key = (f, idx) in
  match Hashtbl.find_opt sess.results key with
  | Some t -> Tests [ t ]
  | None -> (
      let part =
        match Hashtbl.find_opt sess.pending key with
        | Some p -> Some p
        | None ->
            let act = Incr.new_activation sess.ctx.sess in
            sess.ctx.guard <- Some act;
            sess.ctx.locals <- [];
            sess.ctx.qcone <- None;
            let observable = encode sess.ctx sess.ls in
            let locals = sess.ctx.locals in
            let cone = sess.ctx.qcone in
            sess.ctx.guard <- None;
            sess.ctx.locals <- [];
            sess.ctx.qcone <- None;
            List.iter (fun n -> sess.ctx.faulty.(n) <- 0) sess.ctx.touched;
            sess.ctx.touched <- [];
            if observable then begin
              (match cone with Some c -> c.cone_refs <- c.cone_refs + 1 | None -> ());
              let p = { act; cone; locals } in
              Hashtbl.replace sess.pending key p;
              Some p
            end
            else begin
              Incr.retire sess.ctx.sess ~act ~locals;
              None
            end
      in
      let drop_part { act; cone; locals } =
        Incr.retire sess.ctx.sess ~act ~locals;
        (match cone with Some c -> c.cone_refs <- c.cone_refs - 1 | None -> ());
        Hashtbl.remove sess.pending key
      in
      match part with
      | None ->
          (* Structurally unobservable — no difference point reaches an
             observable net.  The cone construction just re-derived that
             fact, so in certified mode it counts as a checked verdict. *)
          (match sess.ctx.cert with
          | Some _ -> Cert.note_check ~ok:true ~ns:0L
          | None -> ());
          Undetectable
      | Some ({ act; cone; locals } as p) -> (
          (* Point the branching heuristic at this query's variables — its
             own binding plus its cone: in a long-lived session VSIDS still
             reflects earlier queries' hot spots, and without the nudge the
             search wanders the shared CNF before touching the cone it is
             actually asked about. *)
          let cone_vars =
            match cone with Some c -> c.cone_vars | None -> []
          in
          Solver.focus_vars (solver sess.ctx) (locals @ cone_vars);
          let assumptions =
            match cone with Some c -> [ c.cone_act ] | None -> []
          in
          match Incr.solve ?max_conflicts ~assumptions sess.ctx.sess ~act with
          | Solver.Sat ->
              (* Certified mode: the reported model must satisfy every clause
                 ever given to the solver — checked by replaying the raw
                 clause trace, independent of the solver's own bookkeeping. *)
              (match sess.ctx.cert with
              | Some cert ->
                  Cert.check_model cert ~assumptions:(act :: assumptions)
                    ~value:(Solver.value (solver sess.ctx))
              | None -> ());
              let t = extract_tests sess.ctx sess.ls in
              drop_part p;
              Hashtbl.replace sess.results key t;
              Tests [ t ]
          | Solver.Unsat ->
              (* Certified mode: replay the learnt-clause proof through the
                 independent checker; the Undetectable verdict stands only if
                 unit propagation alone refutes the query's assumptions. *)
              (match sess.ctx.cert with
              | Some cert -> Cert.check_unsat cert ~assumptions:(act :: assumptions)
              | None -> ());
              drop_part p;
              Undetectable
          | Solver.Unknown -> Unknown))

let check_incr ?max_conflicts sess (f : F.t) =
  let finish v =
    (match v with
    | Unknown -> ()
    | Tests _ | Undetectable ->
        Hashtbl.remove sess.results (f, 0);
        Hashtbl.remove sess.results (f, 1));
    v
  in
  match f.F.kind with
  | F.Stuck (loc, pol) -> finish (run_part ?max_conflicts sess f 0 (encode_stuck loc pol))
  | F.Transition (loc, tr) ->
      let nl = sess.ctx.nl in
      let init_value, pol = transition_components tr in
      finish
        (match
           run_part ?max_conflicts sess f 0
             (encode_controllability (loc_net nl loc) init_value)
         with
        | Undetectable -> Undetectable
        | Unknown -> Unknown
        | Tests init_tests -> (
            match run_part ?max_conflicts sess f 1 (encode_stuck loc pol) with
            | Undetectable -> Undetectable
            | Unknown -> Unknown
            | Tests stuck_tests -> Tests (init_tests @ stuck_tests)))
  | F.Bridge (n1, n2, k) -> finish (run_part ?max_conflicts sess f 0 (encode_bridge n1 n2 k))
  | F.Internal (g, entry_idx) ->
      finish (run_part ?max_conflicts sess f 0 (encode_internal g entry_idx))

(* One-shot compatibility entry point: a throwaway session per fault. *)
let check ?certify ?max_conflicts ls (f : F.t) =
  check_incr ?max_conflicts (make_session ?certify ls) f

(** PODEM: path-oriented decision making, the classic structural ATPG.

    An independent second engine for single stuck-at faults, used to
    cross-check the SAT-based {!Encode} (the two must agree on
    detectable/undetectable for every fault; the property tests enforce it).
    The implementation is a textbook PODEM over a (good, faulty) pair of
    three-valued simulations: objectives are backtraced through X-paths to a
    primary-input assignment, implications are recomputed by full 3-valued
    resimulation, and exhausting the PI decision tree proves redundancy. *)

type verdict =
  | Test of bool array
      (** a detecting pattern over {!Dfm_sim.Logic_sim.inputs} order *)
  | Redundant
  | Aborted  (** backtrack limit exceeded *)

val check :
  ?max_backtracks:int ->
  Dfm_sim.Logic_sim.t ->
  Dfm_faults.Fault.t ->
  verdict
(** Only [Stuck] faults are supported (PODEM's classic domain).
    @raise Invalid_argument for other fault kinds.
    Default backtrack limit: 10_000. *)

val check_with_sat :
  ?max_backtracks:int ->
  ?max_conflicts:int ->
  ?session:Encode.session ->
  Dfm_sim.Logic_sim.t ->
  Dfm_faults.Fault.t ->
  verdict
(** {!check}, escalating an [Aborted] structural search to a SAT query:
    with [session] the query joins that shared incremental session
    ({!Encode.check_incr}) and benefits from its retained clauses, without
    it a one-shot {!Encode.check} runs.  A SAT [Undetectable] maps to
    [Redundant]; an over-budget SAT query stays [Aborted].  Fallbacks are
    counted in [dfm_podem_sat_fallbacks_total]. *)

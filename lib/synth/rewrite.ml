let max_flatten = 16

let depth aig outputs =
  let n = Aig.num_nodes aig in
  let d = Array.make n 0 in
  for v = 0 to n - 1 do
    match Aig.kind aig v with
    | Aig.Const0 | Aig.Input _ -> d.(v) <- 0
    | Aig.And (a, b) ->
        d.(v) <- 1 + max d.(Aig.node_of_lit a) d.(Aig.node_of_lit b)
  done;
  List.fold_left (fun acc (_, l) -> max acc d.(Aig.node_of_lit l)) 0 outputs

let balance aig ~outputs =
  let n = Aig.num_nodes aig in
  let fresh = Aig.create () in
  let map = Array.make n Aig.lit_false in
  let new_depth : (int, int) Hashtbl.t = Hashtbl.create 256 in
  let depth_of_lit l =
    match Hashtbl.find_opt new_depth (Aig.node_of_lit l) with Some d -> d | None -> 0
  in
  let new_lit_of old_lit =
    let m = map.(Aig.node_of_lit old_lit) in
    if Aig.is_complemented old_lit then Aig.not_ m else m
  in
  (* Flatten the conjunction tree rooted at an old node: descend through
     uncomplemented AND edges, stop at inputs, complemented edges, or once
     the conjunct list is big enough. *)
  let gather v =
    let acc = ref [] in
    let count = ref 0 in
    let rec go lit =
      let u = Aig.node_of_lit lit in
      match Aig.kind aig u with
      | Aig.And (a, b) when (not (Aig.is_complemented lit)) && !count < max_flatten ->
          incr count;
          go a;
          go b
      | Aig.And _ | Aig.Const0 | Aig.Input _ -> acc := lit :: !acc
    in
    (match Aig.kind aig v with
    | Aig.And (a, b) ->
        go a;
        go b
    | Aig.Const0 | Aig.Input _ -> ());
    List.rev !acc
  in
  for v = 0 to n - 1 do
    match Aig.kind aig v with
    | Aig.Const0 -> map.(v) <- Aig.lit_false
    | Aig.Input name -> map.(v) <- Aig.input fresh name
    | Aig.And _ ->
        let conjuncts = List.map new_lit_of (gather v) in
        (* Huffman-style: always combine the two shallowest conjuncts. *)
        let heap = Dfm_util.Heap.create () in
        List.iter (fun l -> Dfm_util.Heap.push heap (float_of_int (depth_of_lit l)) l) conjuncts;
        let rec combine () =
          match Dfm_util.Heap.pop heap with
          | None -> Aig.lit_true
          | Some (_, l1) -> (
              match Dfm_util.Heap.pop heap with
              | None -> l1
              | Some (_, l2) ->
                  let l = Aig.and_ fresh l1 l2 in
                  (* [Aig.and_] strashes and simplifies: it may hand back an
                     existing node (whose true depth is already recorded) or
                     an input/constant (depth 0) rather than a fresh AND.
                     Only a genuinely new node gets the 1+max estimate —
                     overwriting an existing node's depth would corrupt the
                     heap ordering and let the rebuild come out deeper than
                     the input. *)
                  (match Aig.kind fresh (Aig.node_of_lit l) with
                  | Aig.And _ ->
                      if not (Hashtbl.mem new_depth (Aig.node_of_lit l)) then
                        Hashtbl.replace new_depth (Aig.node_of_lit l)
                          (1 + max (depth_of_lit l1) (depth_of_lit l2))
                  | Aig.Const0 | Aig.Input _ -> ());
                  Dfm_util.Heap.push heap (float_of_int (depth_of_lit l)) l;
                  combine ())
        in
        map.(v) <- combine ()
  done;
  let outputs' = List.map (fun (name, l) -> (name, new_lit_of l)) outputs in
  (fresh, outputs')

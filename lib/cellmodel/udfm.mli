(** User-defined fault model (UDFM) extraction.

    For every standard cell and every internal DFM-violation site, the
    defective cell is switch-level simulated over all input patterns.  The
    patterns on which the defective output deviates from the good output form
    the *activation set* of the resulting internal fault; a deviation to [VX]
    or [VZ] (contention / floating) is counted as a deviation, the usual
    pessimistic choice of cell-aware flows.  Sites whose defect never changes
    the output are benign and produce no fault.

    The flip-flop cell is not switch-simulated (its behaviour is sequential);
    its sites carry hand-modeled activation conditions on the D pin, and
    detection reduces to scan-path controllability of D (see [dfm_faults]). *)

type entry = {
  site : Defect.site;
  activation : int list;
      (** minterm indices over the cell inputs (pin order) that activate the
          defect, i.e. flip the cell output *)
}

type t = {
  cell_name : string;
  arity : int;
  entries : entry list;   (** one per non-benign site *)
  benign_sites : int;
}

val characterize : Osu018.model -> t
(** @raise Failure if the healthy network disagrees with the cell's declared
    truth table (a consistency bug in the catalog). *)

val all : unit -> t list
(** Characterization of the whole library, computed once and cached. *)

val for_cell : string -> t
(** Cached lookup.  @raise Not_found for unknown cells. *)

val internal_fault_count : string -> int
(** Number of internal faults one instance of the cell contributes — the
    quantity by which the paper orders library cells. *)

val preload : unit -> unit
(** Force the lazy characterization caches from the calling domain.  OCaml
    [lazy] blocks are not safe to force concurrently; callers that hand
    cells to {!Dfm_util.Parallel} workers force them up front. *)

module Tt = Dfm_logic.Truthtable

type entry = {
  site : Defect.site;
  activation : int list;
}

type t = {
  cell_name : string;
  arity : int;
  entries : entry list;
  benign_sites : int;
}

let bool_of_v4 = function
  | Switch.V0 -> Some false
  | Switch.V1 -> Some true
  | Switch.VX | Switch.VZ -> None

(* Activation for hand-modeled flip-flop defects: which D values exercise
   the defect (master/slave latch holding that value). *)
let dff_activation (site : Defect.site) =
  match site.Defect.defect with
  | Defect.Pin_open _ -> [ 0; 1 ]
  | Defect.Node_short (_, Switch.Vdd) -> [ 0 ]
  | Defect.Node_short (_, Switch.Gnd) -> [ 1 ]
  | Defect.Node_short (_, _) -> [ site.Defect.site_id mod 2 ]
  | Defect.Transistor_stuck_off i -> [ i mod 2 ]
  | Defect.Drain_source_short i -> [ (i + 1) mod 2 ]

let characterize (m : Osu018.model) =
  let cell = m.Osu018.cell in
  let name = cell.Dfm_netlist.Cell.name in
  let arity = Dfm_netlist.Cell.arity cell in
  match m.Osu018.network with
  | None ->
      let entries =
        List.map (fun site -> { site; activation = dff_activation site }) m.Osu018.sites
      in
      { cell_name = name; arity; entries; benign_sites = 0 }
  | Some network ->
      let pin_names = cell.Dfm_netlist.Cell.inputs in
      let assignment_of_minterm mt =
        Array.to_list (Array.mapi (fun k p -> (p, (mt lsr k) land 1 = 1)) pin_names)
      in
      (* Check the healthy network against the declared truth table. *)
      for mt = 0 to (1 lsl arity) - 1 do
        let v = Switch.eval network Switch.healthy (assignment_of_minterm mt) in
        match bool_of_v4 v with
        | Some b when b = Tt.eval_index cell.Dfm_netlist.Cell.func mt -> ()
        | _ ->
            failwith
              (Printf.sprintf "Udfm.characterize %s: healthy network gives %s on minterm %d"
                 name (Switch.v4_to_string v) mt)
      done;
      let benign = ref 0 in
      let entries =
        List.filter_map
          (fun (site : Defect.site) ->
            let cond = Defect.to_condition network site.Defect.defect in
            let activation = ref [] in
            for mt = (1 lsl arity) - 1 downto 0 do
              let good = Tt.eval_index cell.Dfm_netlist.Cell.func mt in
              let faulty = Switch.eval network cond (assignment_of_minterm mt) in
              let deviates =
                match bool_of_v4 faulty with
                | Some b -> b <> good
                | None -> true  (* X or Z: pessimistically a deviation *)
              in
              if deviates then activation := mt :: !activation
            done;
            if !activation = [] then begin
              incr benign;
              None
            end
            else Some { site; activation = !activation })
          m.Osu018.sites
      in
      { cell_name = name; arity; entries; benign_sites = !benign }

let cache = lazy (List.map characterize Osu018.models)

let all () = Lazy.force cache

let by_name =
  lazy
    (let tbl = Hashtbl.create 32 in
     List.iter (fun u -> Hashtbl.add tbl u.cell_name u) (all ());
     tbl)

let for_cell name =
  match Hashtbl.find_opt (Lazy.force by_name) name with
  | Some u -> u
  | None -> raise Not_found

let internal_fault_count name = List.length (for_cell name).entries

let preload () = ignore (Lazy.force by_name : (string, t) Hashtbl.t)

module N = Dfm_netlist.Netlist

type t = {
  order : int list;
  wirelength : float;
  chain_length : int;
}

let stitch (pl : Place.t) =
  let nl = pl.Place.nl in
  let flops = N.seq_gates nl in
  (* Row-major serpentine: sort by row; within a row, alternate direction. *)
  let keyed =
    List.map
      (fun (g : N.gate) ->
        let r = pl.Place.row_of.(g.N.gate_id) in
        let x = pl.Place.x_of.(g.N.gate_id) in
        (r, x, g.N.gate_id))
      flops
  in
  let by_row = Hashtbl.create 16 in
  List.iter
    (fun (r, x, g) ->
      Hashtbl.replace by_row r ((x, g) :: (try Hashtbl.find by_row r with Not_found -> [])))
    keyed;
  let rows = Hashtbl.fold (fun r _ acc -> r :: acc) by_row [] |> List.sort compare in
  let order =
    List.concat_map
      (fun r ->
        let members = List.sort compare (Hashtbl.find by_row r) in
        let members = if r mod 2 = 1 then List.rev members else members in
        List.map snd members)
      rows
  in
  let wirelength =
    let rec walk acc = function
      | a :: (b :: _ as rest) ->
          let pa = Place.gate_center pl a and pb = Place.gate_center pl b in
          walk (acc +. Geom.dist pa pb) rest
      | _ -> acc
    in
    walk 0.0 order
  in
  { order; wirelength; chain_length = List.length order }

let test_cycles t ~patterns = (patterns + 1) * (t.chain_length + 1)

let test_time_ms t ~patterns ~shift_mhz =
  float_of_int (test_cycles t ~patterns) /. (shift_mhz *. 1000.0)

(* Command-line driver for the DFM resynthesis flow.

   Subcommands:
     list                      enumerate the benchmark blocks
     analyze  CIRCUIT          implement and report fault/cluster metrics
     resynth  CIRCUIT          run the two-phase resynthesis (Section III)
     lint     CIRCUIT          structural + dataflow lint, CI exit codes
     ablate   CIRCUIT          the Section IV restricted-library experiment
     dump     CIRCUIT          write the generated netlist in text format
     cells                     show the library with internal fault counts *)

open Cmdliner

module Design = Dfm_core.Design
module Resynth = Dfm_core.Resynth
module Report = Dfm_core.Report
module Circuits = Dfm_circuits.Circuits
module N = Dfm_netlist.Netlist
module Lint = Dfm_lint.Lint

let scale_arg =
  let doc = "Scale factor for the generated blocks (default \\$REPRO_SCALE or 1.0)." in
  Arg.(value & opt (some float) None & info [ "scale" ] ~docv:"S" ~doc)

let jobs_arg =
  let doc =
    "Worker domains for the fault-classification engine (default \\$REPRO_JOBS or the \
     machine's recommended domain count).  The classification is bit-identical for every \
     value; 1 disables parallelism."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let apply_jobs jobs =
  Option.iter
    (fun j ->
      if j < 1 then begin
        Fmt.epr "dfm_resynth: --jobs must be at least 1 (got %d)@." j;
        exit 2
      end;
      Dfm_util.Parallel.set_default_jobs j)
    jobs

let failpoint_arg =
  let doc =
    "Arm a deterministic fault-injection site for resilience testing, e.g. \
     $(b,store.append=io), $(b,parallel.task=raise:times=2) or \
     $(b,checkpoint.append=partial:after=3).  Repeatable; specs in \\$REPRO_FAILPOINTS \
     are applied as well."
  in
  Arg.(value & opt_all string [] & info [ "failpoint" ] ~docv:"SPEC" ~doc)

let apply_failpoints specs =
  (match Dfm_util.Failpoint.parse_env () with
  | Ok () -> ()
  | Error e ->
      Fmt.epr "dfm_resynth: REPRO_FAILPOINTS: %s@." e;
      exit 2);
  List.iter
    (fun s ->
      match Dfm_util.Failpoint.parse s with
      | Ok () -> ()
      | Error e ->
          Fmt.epr "dfm_resynth: --failpoint %s: %s@." s e;
          exit 2)
    specs

(* ---- observability ---- *)

let trace_arg =
  let doc =
    "Record hierarchical spans (campaign, q-step, phase, candidate, implement, classify, \
     SAT solve) and write them to $(docv) as Chrome trace-event JSON — load it in \
     Perfetto or chrome://tracing.  Results are bit-identical with or without tracing."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc =
    "Write a metrics snapshot (SAT effort, cache traffic, pool load, checkpoint frames, \
     escalation ladder) to $(docv) in Prometheus text exposition format at exit."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let log_level_arg =
  let doc = "Log verbosity on stderr: $(b,error), $(b,warn) (default), $(b,info) or $(b,debug)." in
  Arg.(value & opt (some string) None & info [ "log-level" ] ~docv:"LEVEL" ~doc)

let progress_arg =
  let doc =
    "Show live campaign progress on stderr.  Bare $(b,--progress) (mode $(b,auto)) redraws \
     a one-line display when stderr is a terminal and emits nothing otherwise; \
     $(b,--progress=plain) prints one line per update, suitable for logs and CI."
  in
  let modes =
    Arg.enum [ ("auto", Dfm_obs.Progress.Auto); ("plain", Dfm_obs.Progress.Plain) ]
  in
  Arg.(
    value
    & opt ~vopt:(Some Dfm_obs.Progress.Auto) (some modes) None
    & info [ "progress" ] ~docv:"MODE" ~doc)

type obs = { trace : string option; metrics : string option }

let apply_obs trace metrics log_level progress =
  Dfm_obs.Log.set_sink (Some Dfm_obs.Log.stderr_sink);
  (match log_level with
  | None -> ()
  | Some s -> (
      match Dfm_obs.Log.level_of_string s with
      | Some l -> Dfm_obs.Log.set_level l
      | None ->
          Fmt.epr "dfm_resynth: --log-level %s: expected error, warn, info or debug@." s;
          exit 2));
  if trace <> None then Dfm_obs.Span.set_enabled true;
  (* Duration histograms need clock reads; pay for them only when some
     exporter will consume the data. *)
  if trace <> None || metrics <> None then Dfm_obs.Metrics.set_timing_enabled true;
  (match progress with
  | None -> Dfm_obs.Progress.set_enabled false
  | Some m ->
      Dfm_obs.Progress.set_mode m;
      Dfm_obs.Progress.set_enabled true);
  { trace; metrics }

let finish_obs o =
  Dfm_obs.Progress.finish ();
  (match o.trace with
  | None -> ()
  | Some path ->
      Dfm_obs.Export.write_chrome_trace path (Dfm_obs.Span.drain ());
      Fmt.pr "wrote trace %s@." path);
  match o.metrics with
  | None -> ()
  | Some path ->
      Dfm_obs.Export.write_prometheus path (Dfm_obs.Metrics.snapshot ());
      Fmt.pr "wrote metrics %s@." path

let max_conflicts_arg =
  let doc =
    "Bound every classification SAT query to $(docv) solver conflicts.  Faults the budget \
     aborts are retried on a geometric budget ladder (x4 per rung, capped total effort); \
     any residue is reported, never silently dropped."
  in
  Arg.(value & opt (some int) None & info [ "max-conflicts" ] ~docv:"N" ~doc)

(* A bounded budget on the CLI always comes with the escalation ladder: the
   flag exists to make runs faster, not to quietly change verdicts. *)
let escalation_of max_conflicts =
  Option.map (fun _ -> Dfm_atpg.Atpg.default_escalation) max_conflicts

let certify_arg =
  let doc =
    "Verify every emitted verdict against an independent certificate: Detected faults by \
     re-simulating their witness test vector, Undetectable faults by replaying the \
     solver's UNSAT proof through an independent unit-propagation checker, cache hits by \
     their stored certificate mark, accepted ECOs by a checked equivalence proof.  \
     Results are bit-identical to an uncertified run; a failed check aborts with exit 4.  \
     Also enabled by \\$REPRO_CERTIFY=1."
  in
  Arg.(value & flag & info [ "certify" ] ~doc)

let certify_enabled flag =
  flag
  ||
  match Sys.getenv_opt "REPRO_CERTIFY" with
  | None | Some "" | Some "0" -> false
  | Some _ -> true

(* The certification summary goes to stderr: certified stdout must stay
   byte-identical to the uncertified run's (the test suite diffs them). *)
let report_certify certify =
  if certify then begin
    let t = Dfm_sat.Cert.totals () in
    Fmt.epr "certify: %d certificate check(s), %d failed@." t.Dfm_sat.Cert.checked
      t.Dfm_sat.Cert.failed
  end

let certify_failed msg =
  Fmt.epr "dfm_resynth: certification failed: %s@." msg;
  exit 4

let sat_mode_arg =
  let doc =
    "SAT engine for the ATPG queries: $(b,incremental) (the default) keeps one persistent \
     solver per fault shard — the good-circuit CNF is encoded once, each fault adds only \
     activation-guarded cone clauses, learnt clauses carry across queries; $(b,oneshot) \
     builds a throwaway solver per query (the pre-incremental behaviour).  Verdicts are \
     identical in both modes."
  in
  let modes =
    Arg.enum [ ("incremental", Dfm_atpg.Atpg.Incremental); ("oneshot", Dfm_atpg.Atpg.Oneshot) ]
  in
  Arg.(
    value
    & opt modes (Dfm_atpg.Atpg.default_sat_mode ())
    & info [ "sat-mode" ] ~docv:"MODE" ~doc)

let cache_dir_arg =
  let doc =
    "Directory for the persistent fault-verdict cache (default \\$REPRO_CACHE; unset \
     disables caching).  Verdicts of structurally unchanged fault cones are reused across \
     iterations and across invocations; results are bit-identical either way."
  in
  Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR" ~doc)

let expect_hits_arg =
  let doc =
    "Fail (exit 3) unless the verdict cache served at least one hit — used by the test \
     suite to assert warm-cache behaviour."
  in
  Arg.(value & flag & info [ "expect-cache-hits" ] ~doc)

let make_cache dir =
  let explicit = dir <> None in
  match (match dir with Some _ -> dir | None -> Sys.getenv_opt "REPRO_CACHE") with
  | None -> None
  | Some d ->
      let c = Dfm_incr.Cache.create ~dir:d ~log:(fun s -> Fmt.pr "%s@." s) () in
      (* An implicit (env-provided) cache dir degrades to memory-only like
         any other disk failure; an explicitly requested one that cannot be
         opened is a user error and fails loudly. *)
      if explicit && (Dfm_incr.Cache.stats c).Dfm_incr.Store.degraded then begin
        Fmt.epr "dfm_resynth: cache directory %s is not usable@." d;
        exit 2
      end;
      Some c

let checkpoint_dir_arg =
  let doc =
    "Directory for the campaign checkpoint journal.  Every accepted design point is \
     journaled; a killed run re-invoked with $(b,--resume) continues from the last accept \
     and finishes bit-identically to an uninterrupted run."
  in
  Arg.(value & opt (some string) None & info [ "checkpoint-dir" ] ~docv:"DIR" ~doc)

let resume_arg =
  let doc = "Resume from the journal in $(b,--checkpoint-dir) instead of starting fresh." in
  Arg.(value & flag & info [ "resume" ] ~doc)

let make_checkpoint dir resume =
  match dir with
  | None ->
      if resume then begin
        Fmt.epr "dfm_resynth: --resume requires --checkpoint-dir@.";
        exit 2
      end;
      None
  | Some d ->
      (try if not (Sys.file_exists d) then Sys.mkdir d 0o755
       with Sys_error e ->
         Fmt.epr "dfm_resynth: cannot create checkpoint directory %s: %s@." d e;
         exit 2);
      if not (Sys.is_directory d) then begin
        Fmt.epr "dfm_resynth: checkpoint path %s is not a directory@." d;
        exit 2
      end;
      (* Probe writability now: an unwritable journal must fail before the
         campaign spends hours, not at the first accept. *)
      let probe = Filename.concat d ".probe" in
      (try
         let oc = open_out probe in
         close_out oc;
         Sys.remove probe
       with Sys_error e ->
         Fmt.epr "dfm_resynth: checkpoint directory %s is not writable: %s@." d e;
         exit 2);
      Some { Resynth.path = Filename.concat d "campaign.ckpt"; resume }

let report_cache ~expect_hits cache =
  match cache with
  | None ->
      if expect_hits then begin
        Fmt.epr "--expect-cache-hits without a cache (--cache-dir or REPRO_CACHE)@.";
        exit 3
      end
  | Some c ->
      let st = Dfm_incr.Cache.stats c in
      Fmt.pr "cache: %d hits / %d lookups (%.1f%% hit rate), %d new verdicts stored, %d from disk@."
        st.Dfm_incr.Store.hits
        (st.Dfm_incr.Store.hits + st.Dfm_incr.Store.misses)
        (100.0 *. Dfm_incr.Cache.hit_rate c)
        st.Dfm_incr.Store.stores st.Dfm_incr.Store.disk_loaded;
      (match Dfm_incr.Cache.resweep_stats c with
      | None -> ()
      | Some r ->
          Fmt.pr "cache: incremental resweeps reused %d/%d support hashes@."
            r.Dfm_incr.Invalidate.support_reused r.Dfm_incr.Invalidate.nets_total);
      Dfm_incr.Cache.close c;
      if expect_hits && st.Dfm_incr.Store.hits = 0 then begin
        Fmt.epr "expected cache hits, saw none@.";
        exit 3
      end

let circuit_arg =
  let doc =
    "Benchmark block name (see the list subcommand), or the path of a netlist file in the \
     text format of the dump subcommand (--scale is ignored for files)."
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"CIRCUIT" ~doc)

(* A path-looking argument ("./x", "a/b", "x.nl") is treated as a netlist
   file; everything else must be a known generated block. *)
let looks_like_path name = String.contains name '/' || Filename.check_suffix name ".nl"

let build ?scale name =
  if List.mem name Circuits.names then Circuits.build ?scale name
  else if Sys.file_exists name && not (Sys.is_directory name) then begin
    try Dfm_netlist.Netlist_io.read_file ~library:Dfm_cellmodel.Osu018.library name
    with Failure e | Sys_error e ->
      Fmt.epr "dfm_resynth: cannot read netlist %s: %s@." name e;
      exit 2
  end
  else if looks_like_path name then begin
    Fmt.epr "dfm_resynth: netlist file %s does not exist@." name;
    exit 2
  end
  else begin
    Fmt.epr "dfm_resynth: unknown circuit %s; known: %s@." name
      (String.concat " " Circuits.names);
    exit 2
  end

(* ---- list ---- *)

let list_cmd =
  let run () =
    List.iter
      (fun name ->
        let nl = build ~scale:0.25 name in
        Fmt.pr "%-12s (at scale 0.25: %d gates, %d PIs, %d POs)@." name (N.num_gates nl)
          (Array.length nl.N.pis) (Array.length nl.N.pos))
      Circuits.names
  in
  Cmd.v (Cmd.info "list" ~doc:"List the twelve benchmark blocks.")
    Term.(const run $ const ())

(* ---- cells ---- *)

let cells_cmd =
  let run () =
    Fmt.pr "%-10s %5s %6s %8s %9s@." "cell" "pins" "trans" "area" "int.faults";
    List.iter
      (fun (c : Dfm_netlist.Cell.t) ->
        Fmt.pr "%-10s %5d %6d %8.1f %9d@." c.Dfm_netlist.Cell.name
          (Dfm_netlist.Cell.arity c) c.Dfm_netlist.Cell.transistors c.Dfm_netlist.Cell.area
          (Dfm_cellmodel.Udfm.internal_fault_count c.Dfm_netlist.Cell.name))
      (Resynth.cells_by_internal_faults Dfm_cellmodel.Osu018.library
      @ Dfm_netlist.Library.sequential Dfm_cellmodel.Osu018.library)
  in
  Cmd.v
    (Cmd.info "cells"
       ~doc:"Show the 21-cell library ordered by internal DFM fault count.")
    Term.(const run $ const ())

(* ---- analyze ---- *)

let static_filter_arg =
  let doc =
    "Run the sound dataflow analysis of the lint engine before ATPG and skip random \
     simulation and SAT for faults it proves Undetectable.  Verdicts are bit-identical \
     with or without the filter; only the number of SAT queries changes."
  in
  Arg.(value & flag & info [ "static-filter" ] ~doc)

let report_file_arg =
  let doc =
    "Also write the deterministic report (netlist summary, metrics, Table-I row, cluster \
     sizes — exactly the bytes printed on stdout after the progress chatter) to $(docv).  \
     The serve daemon returns the same bytes for an equivalent analyze job; the serve \
     smoke test diffs the two."
  in
  Arg.(value & opt (some string) None & info [ "report" ] ~docv:"FILE" ~doc)

let analyze_cmd =
  let run name scale jobs cache_dir expect_hits max_conflicts static_filter sat_mode certify
      failpoints report_file trace metrics log_level progress =
    apply_jobs jobs;
    apply_failpoints failpoints;
    let certify = certify_enabled certify in
    let obs = apply_obs trace metrics log_level progress in
    let nl = build ?scale name in
    Fmt.pr "building and implementing %s (%d jobs) ...@." name
      (Dfm_util.Parallel.default_jobs ());
    let cache = make_cache cache_dir in
    let d =
      try
        Design.implement ?cache ?max_conflicts ?escalation:(escalation_of max_conflicts)
          ~static_filter ~sat_mode ~certify nl
      with Dfm_sat.Cert.Check_failed msg -> certify_failed msg
    in
    if static_filter then
      Fmt.pr "static filter: %d fault(s) proven Undetectable before SAT@."
        (Dfm_obs.Metrics.counter_value
           (Dfm_obs.Metrics.counter "dfm_atpg_static_filtered_total"));
    (match d.Design.escalation with
    | Some es ->
        Fmt.pr "escalation: %d retries over %d rungs resolved %d abort(s), %d residual@."
          es.Dfm_atpg.Atpg.retried es.Dfm_atpg.Atpg.rungs es.Dfm_atpg.Atpg.resolved
          es.Dfm_atpg.Atpg.residual
    | None -> ());
    let report = Report.analyze_report ~name d in
    print_string report;
    (match report_file with
    | None -> ()
    | Some path -> (
        try
          let oc = open_out path in
          output_string oc report;
          close_out oc
        with Sys_error e ->
          Fmt.epr "dfm_resynth: cannot write report %s: %s@." path e;
          exit 2));
    report_cache ~expect_hits cache;
    report_certify certify;
    finish_obs obs
  in
  Cmd.v (Cmd.info "analyze" ~doc:"Implement a block and report its fault clustering.")
    Term.(
      const run $ circuit_arg $ scale_arg $ jobs_arg $ cache_dir_arg $ expect_hits_arg
      $ max_conflicts_arg $ static_filter_arg $ sat_mode_arg $ certify_arg $ failpoint_arg
      $ report_file_arg $ trace_arg $ metrics_arg $ log_level_arg $ progress_arg)

(* ---- lint ---- *)

let lint_cmd =
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON.") in
  let baseline_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "baseline" ] ~docv:"FILE"
          ~doc:
            "Suppress findings listed in $(docv) (one $(b,RULE kind:name) entry per line, \
             $(b,#) comments allowed).")
  in
  let write_baseline =
    Arg.(
      value & flag
      & info [ "write-baseline" ]
          ~doc:
            "Write every current finding to the $(b,--baseline) file (accepting the current \
             state) and exit 0.")
  in
  let strict =
    Arg.(value & flag & info [ "strict" ] ~doc:"Fail on warnings too, not only on errors.")
  in
  let fanout_limit =
    Arg.(
      value
      & opt int Lint.default_config.Lint.fanout_limit
      & info [ "fanout-limit" ] ~docv:"N" ~doc:"Fanout threshold for rule L009.")
  in
  let run name scale json baseline write_baseline strict fanout_limit =
    if fanout_limit < 1 then begin
      Fmt.epr "dfm_resynth: --fanout-limit must be at least 1 (got %d)@." fanout_limit;
      exit 2
    end;
    let nl = build ?scale name in
    let config = { Lint.default_config with Lint.fanout_limit } in
    let report = Lint.check ~config nl in
    if write_baseline then begin
      match baseline with
      | None ->
          Fmt.epr "dfm_resynth: --write-baseline requires --baseline@.";
          exit 2
      | Some path ->
          let oc = open_out path in
          output_string oc (Lint.baseline_of_report report);
          close_out oc;
          Fmt.pr "wrote %d baseline entr%s to %s@."
            (List.length report.Lint.findings)
            (if List.length report.Lint.findings = 1 then "y" else "ies")
            path
    end
    else begin
      let base =
        match baseline with
        | None -> Lint.empty_baseline
        | Some path -> (
            try Lint.load_baseline path
            with Sys_error e | Failure e ->
              Fmt.epr "dfm_resynth: --baseline %s: %s@." path e;
              exit 2)
      in
      let kept, suppressed = Lint.suppress base report in
      if json then print_string (Lint.to_json kept)
      else begin
        Format.printf "%a" Lint.pp_text kept;
        if suppressed <> [] then
          Fmt.pr "(%d finding(s) suppressed by the baseline)@." (List.length suppressed)
      end;
      let fails =
        Lint.errors kept <> [] || (strict && Lint.warnings kept <> [])
      in
      exit (if fails then 1 else 0)
    end
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Check a block (or netlist file) against the structural and dataflow lint rules.  \
          Exits 0 when no unsuppressed error (with --strict: or warning) remains, 1 \
          otherwise — CI-friendly.")
    Term.(
      const run $ circuit_arg $ scale_arg $ json $ baseline_arg $ write_baseline $ strict
      $ fanout_limit)

(* ---- resynth ---- *)

let resynth_cmd =
  let q_max =
    Arg.(value & opt int 5 & info [ "q-max" ] ~docv:"Q" ~doc:"Maximum delay/power increase, percent.")
  in
  let p1 =
    Arg.(value & opt float 1.0 & info [ "p1" ] ~docv:"P" ~doc:"Phase-1 cluster-size target, percent of |F|.")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Write the resynthesized netlist (text format) to \\$(docv).")
  in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print accepted steps.") in
  let run name scale jobs cache_dir expect_hits q_max p1 out verbose max_conflicts sat_mode
      certify failpoints checkpoint_dir resume trace metrics log_level progress =
    apply_jobs jobs;
    apply_failpoints failpoints;
    let certify = certify_enabled certify in
    let obs = apply_obs trace metrics log_level progress in
    let checkpoint = make_checkpoint checkpoint_dir resume in
    let nl = build ?scale name in
    Fmt.pr "implementing %s (%d jobs) ...@." name (Dfm_util.Parallel.default_jobs ());
    let cache = make_cache cache_dir in
    let escalation = escalation_of max_conflicts in
    let r =
      (* The whole campaign — baseline implement included — sits under one
         handler: with --checkpoint-dir, any injected or I/O death becomes
         a one-line "campaign aborted" + exit 2, never a backtrace. *)
      try
        let d0 = Design.implement ?cache ?max_conflicts ?escalation ~sat_mode ~certify nl in
        Fmt.pr "original:      %a@." Design.pp_metrics (Design.metrics d0);
        (* -v keeps its historical behaviour through the deprecated [?log]
           shim; without it campaign messages flow through Dfm_obs.Log and
           appear at --log-level info. *)
        let log = if verbose then Some (fun s -> Fmt.pr "  %s@." s) else None in
        Resynth.run ~p1_percent:p1 ~q_max ?cache ?max_conflicts ?escalation ~sat_mode
          ~certify ?checkpoint ?log d0
      with
      | Dfm_sat.Cert.Check_failed msg -> certify_failed msg
      | Dfm_core.Checkpoint.Error msg ->
          Fmt.epr "dfm_resynth: %s@." msg;
          exit 2
      | Sys_error msg when Option.is_some checkpoint ->
          (* The journal writer is loud by design: a failed append kills the
             campaign rather than silently losing the resume point. *)
          Fmt.epr "dfm_resynth: campaign aborted: %s (re-run with --resume)@." msg;
          exit 2
      | Dfm_util.Failpoint.Injected site when Option.is_some checkpoint ->
          Fmt.epr "dfm_resynth: campaign aborted: injected failure at %s (re-run with --resume)@."
            site;
          exit 2
    in
    Fmt.pr "resynthesized: %a@." Design.pp_metrics (Design.metrics r.Resynth.final);
    Fmt.pr "effort: %a@." Report.pp_effort (Report.effort r);
    report_cache ~expect_hits cache;
    let orig, resyn = Report.table2_rows ~name r in
    Fmt.pr "@[<v>Table-II rows:@,%a@,%a@,%a@]@." Report.pp_table2_header ()
      Report.pp_table2_row orig Report.pp_table2_row resyn;
    (match
       try Dfm_atpg.Equiv_sat.check ~certify nl r.Resynth.final.Design.netlist
       with Dfm_sat.Cert.Check_failed msg -> certify_failed msg
     with
    | Dfm_atpg.Equiv_sat.Equivalent -> Fmt.pr "equivalence: PROVEN@."
    | Dfm_atpg.Equiv_sat.Different l -> Fmt.pr "equivalence: FAILED at %s@." l
    | Dfm_atpg.Equiv_sat.Interface_mismatch m -> Fmt.pr "equivalence: interface %s@." m);
    report_certify certify;
    (match out with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        output_string oc (Dfm_netlist.Netlist_io.to_string r.Resynth.final.Design.netlist);
        close_out oc;
        Fmt.pr "wrote %s@." path);
    finish_obs obs
  in
  Cmd.v
    (Cmd.info "resynth"
       ~doc:"Run the two-phase resynthesis procedure of the paper on a block.")
    Term.(
      const run $ circuit_arg $ scale_arg $ jobs_arg $ cache_dir_arg $ expect_hits_arg $ q_max
      $ p1 $ out $ verbose $ max_conflicts_arg $ sat_mode_arg $ certify_arg $ failpoint_arg
      $ checkpoint_dir_arg $ resume_arg $ trace_arg $ metrics_arg $ log_level_arg
      $ progress_arg)

(* ---- ablate ---- *)

let ablate_cmd =
  let run name scale jobs =
    apply_jobs jobs;
    let nl = build ?scale name in
    let row = Report.ablation ~name nl in
    Fmt.pr "removed cells: %s@." (String.concat " " row.Report.removed);
    if row.Report.fits then
      Fmt.pr "delay %.1f%%, power %.1f%% of the original design@."
        (100.0 *. row.Report.delay_rel)
        (100.0 *. row.Report.power_rel)
    else Fmt.pr "restricted design no longer fits the original floorplan@."
  in
  Cmd.v
    (Cmd.info "ablate"
       ~doc:"Synthesize with the 7 largest cells removed (Section IV ablation).")
    Term.(const run $ circuit_arg $ scale_arg $ jobs_arg)

(* ---- paths ---- *)

let paths_cmd =
  let k = Arg.(value & opt int 3 & info [ "k" ] ~docv:"K" ~doc:"How many paths to report.") in
  let run name scale k =
    let nl = build ?scale name in
    let fp = Dfm_layout.Floorplan.create nl in
    let pl = Dfm_layout.Place.place nl fp in
    let rt = Dfm_layout.Route.route pl in
    let rep = Dfm_timing.Sta.analyze rt in
    Fmt.pr "critical-path delay: %.3f ns (endpoint %s)@."
      rep.Dfm_timing.Sta.critical_path_delay rep.Dfm_timing.Sta.worst_endpoint;
    List.iter
      (fun p -> Format.printf "%a" Dfm_timing.Paths.pp_path p)
      (Dfm_timing.Paths.critical_paths ~k rt rep);
    let drc = Dfm_layout.Drc.check rt in
    Fmt.pr "DRC: %d errors, %d warnings@." drc.Dfm_layout.Drc.errors drc.Dfm_layout.Drc.warnings
  in
  Cmd.v (Cmd.info "paths" ~doc:"Report the K most critical paths of a placed-and-routed block.")
    Term.(const run $ circuit_arg $ scale_arg $ k)

(* ---- verilog ---- *)

let verilog_cmd =
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Output path (default: stdout).")
  in
  let run name scale out =
    let nl = build ?scale name in
    let text = Dfm_netlist.Verilog.to_string nl in
    match out with
    | None -> print_string text
    | Some path ->
        let oc = open_out path in
        output_string oc text;
        close_out oc;
        Fmt.pr "wrote %s@." path
  in
  Cmd.v (Cmd.info "verilog" ~doc:"Write a generated block as structural Verilog.")
    Term.(const run $ circuit_arg $ scale_arg $ out)

(* ---- dump ---- *)

let dump_cmd =
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Output path (default: stdout).")
  in
  let run name scale out =
    let nl = build ?scale name in
    let text = Dfm_netlist.Netlist_io.to_string nl in
    match out with
    | None -> print_string text
    | Some path ->
        let oc = open_out path in
        output_string oc text;
        close_out oc
  in
  Cmd.v (Cmd.info "dump" ~doc:"Write a generated block in the text netlist format.")
    Term.(const run $ circuit_arg $ scale_arg $ out)

(* ---- serve: the campaign service ---- *)

module Serve_daemon = Dfm_serve.Daemon
module Serve_client = Dfm_serve.Client
module Serve_proto = Dfm_serve.Protocol

let socket_arg =
  let doc = "Unix-domain socket of the campaign service." in
  Arg.(
    required & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)

let serve_cmd =
  let state_dir =
    Arg.(
      required
      & opt (some string) None
      & info [ "state-dir" ] ~docv:"DIR"
          ~doc:
            "Daemon state: the job ledger, the shared verdict cache, and one checkpoint \
             journal per resynthesis job.  Restarting on the same directory re-enqueues \
             incomplete jobs and resumes their campaigns.")
  in
  let run socket state_dir jobs certify failpoints log_level =
    apply_jobs jobs;
    apply_failpoints failpoints;
    let certify = certify_enabled certify in
    Option.iter
      (fun s ->
        match Dfm_obs.Log.level_of_string s with
        | Some l -> Dfm_obs.Log.set_level l
        | None ->
            Fmt.epr "dfm_resynth: --log-level %s: expected error, warn, info or debug@." s;
            exit 2)
      log_level;
    let cfg =
      {
        Serve_daemon.socket_path = socket;
        state_dir;
        jobs = (match jobs with Some j -> j | None -> Dfm_util.Parallel.default_jobs ());
        certify;
      }
    in
    match Serve_daemon.run cfg with
    | completed -> Fmt.pr "serve: drained after %d job(s)@." completed
    | exception Serve_daemon.Startup_error msg ->
        Fmt.epr "dfm_resynth: serve: %s@." msg;
        exit 2
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the campaign service: a daemon accepting concurrent analyze/resynth/lint \
          jobs from multiple clients with fair-share scheduling over one shared verdict \
          cache.  Job results are byte-identical to the equivalent one-shot run.")
    Term.(
      const run $ socket_arg $ state_dir $ jobs_arg $ certify_arg $ failpoint_arg
      $ log_level_arg)

let client_name_arg =
  let doc = "Client (tenant) name for fair-share scheduling and cache accounting." in
  Arg.(value & opt string "cli" & info [ "client" ] ~docv:"NAME" ~doc)

let with_client socket f =
  match Serve_client.connect socket with
  | Error e ->
      Fmt.epr "dfm_resynth: %s@." e;
      exit 2
  | Ok c ->
      let r = f c in
      Serve_client.close c;
      r

let submit_cmd =
  let kind =
    let kinds =
      Arg.enum
        [
          ("analyze", Serve_proto.Analyze);
          ("resynth", Serve_proto.Resynth);
          ("lint", Serve_proto.Lint);
        ]
    in
    Arg.(
      value & opt kinds Serve_proto.Analyze
      & info [ "kind" ] ~docv:"KIND" ~doc:"Job kind: analyze (default), resynth or lint.")
  in
  let max_seconds =
    Arg.(
      value
      & opt (some float) None
      & info [ "max-seconds" ] ~docv:"S"
          ~doc:
            "Wall-clock limit; a resynthesis over it is stopped at the next design-point \
             boundary (its journal is kept).")
  in
  let q_max =
    Arg.(value & opt (some int) None & info [ "q-max" ] ~docv:"Q" ~doc:"Resynth: max delay/power increase, percent.")
  in
  let p1 =
    Arg.(value & opt (some float) None & info [ "p1" ] ~docv:"P" ~doc:"Resynth: phase-1 cluster-size target, percent of |F|.")
  in
  let sat_mode_name =
    Arg.(
      value
      & opt (some (Arg.enum [ ("incremental", "incremental"); ("oneshot", "oneshot") ])) None
      & info [ "sat-mode" ] ~docv:"MODE" ~doc:"SAT engine for the job (daemon default otherwise).")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Resynth: write the returned final netlist to \\$(docv).")
  in
  let events =
    Arg.(value & flag & info [ "events" ] ~doc:"Print streamed job events (log, progress) on stderr.")
  in
  let run name scale socket client kind jobs max_conflicts max_seconds static_filter
      sat_mode q_max p1 report_file out events =
    Option.iter
      (fun j ->
        if j < 1 then begin
          Fmt.epr "dfm_resynth: --jobs must be at least 1 (got %d)@." j;
          exit 2
        end)
      jobs;
    let nl = build ?scale name in
    let sub =
      {
        Serve_proto.client;
        kind;
        (* The job label is the argument verbatim: the report must be
           byte-identical to `analyze <same-argument> --report`. *)
        name;
        netlist = Dfm_netlist.Netlist_io.to_string nl;
        limits = { Serve_proto.jobs; max_conflicts; max_seconds };
        static_filter;
        sat_mode;
        q_max;
        p1;
      }
    in
    let on_event ~job:_ ~stream ~data =
      if events then Fmt.epr "[%s] %s@." stream data
    in
    with_client socket @@ fun c ->
    match Serve_client.submit_and_wait ~on_event c sub with
    | Error e ->
        Fmt.epr "dfm_resynth: submit: %s@." e;
        exit 2
    | Ok r ->
        print_string r.Serve_proto.r_report;
        (match report_file with
        | None -> ()
        | Some path ->
            let oc = open_out path in
            output_string oc r.Serve_proto.r_report;
            close_out oc);
        (match (out, r.Serve_proto.r_netlist) with
        | Some path, Some text ->
            let oc = open_out path in
            output_string oc text;
            close_out oc
        | Some _, None -> Fmt.epr "submit: no netlist in result (kind %s)@."
              (Serve_proto.kind_to_string kind)
        | None, _ -> ());
        if r.Serve_proto.r_outcome <> "done" then begin
          Fmt.epr "dfm_resynth: job %s: %s@." r.Serve_proto.r_job r.Serve_proto.r_outcome;
          exit 1
        end
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:
         "Submit a job to a running campaign service and wait for its result.  The block \
          is built (or read) locally and shipped inline; the report comes back \
          byte-identical to the equivalent one-shot run.")
    Term.(
      const run $ circuit_arg $ scale_arg $ socket_arg $ client_name_arg $ kind $ jobs_arg
      $ max_conflicts_arg $ max_seconds $ static_filter_arg $ sat_mode_name $ q_max $ p1
      $ report_file_arg $ out $ events)

let await_cmd =
  let job = Arg.(required & pos 0 (some string) None & info [] ~docv:"JOB" ~doc:"Job id.") in
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Write the job's final netlist (if any) to \\$(docv).")
  in
  let run socket job report_file out =
    with_client socket @@ fun c ->
    match Serve_client.await c job with
    | Error e ->
        Fmt.epr "dfm_resynth: await: %s@." e;
        exit 2
    | Ok r ->
        print_string r.Serve_proto.r_report;
        (match report_file with
        | None -> ()
        | Some path ->
            let oc = open_out path in
            output_string oc r.Serve_proto.r_report;
            close_out oc);
        (match (out, r.Serve_proto.r_netlist) with
        | Some path, Some text ->
            let oc = open_out path in
            output_string oc text;
            close_out oc
        | _ -> ());
        if r.Serve_proto.r_outcome <> "done" then begin
          Fmt.epr "dfm_resynth: job %s: %s@." r.Serve_proto.r_job r.Serve_proto.r_outcome;
          exit 1
        end
  in
  Cmd.v
    (Cmd.info "await"
       ~doc:
         "Wait for a job's result by id — including a job resumed by a restarted daemon, \
          whose submitting connection died with the previous process.")
    Term.(const run $ socket_arg $ job $ report_file_arg $ out)

let status_cmd =
  let run socket =
    with_client socket @@ fun c ->
    match Serve_client.request c (Serve_proto.Status None) with
    | Error e ->
        Fmt.epr "dfm_resynth: status: %s@." e;
        exit 2
    | Ok (Serve_proto.Status_report { draining; jobs; clients }) ->
        if draining then Fmt.pr "daemon: draining@.";
        Fmt.pr "%-6s %-12s %-8s %-14s %-9s %s@." "job" "client" "kind" "name" "state" "detail";
        List.iter
          (fun (j : Serve_proto.job_view) ->
            Fmt.pr "%-6s %-12s %-8s %-14s %-9s %s@." j.Serve_proto.jv_id
              j.Serve_proto.jv_client
              (Serve_proto.kind_to_string j.Serve_proto.jv_kind)
              j.Serve_proto.jv_name
              (Serve_proto.state_to_string j.Serve_proto.jv_state)
              j.Serve_proto.jv_detail)
          jobs;
        List.iter
          (fun (cv : Serve_proto.client_view) ->
            Fmt.pr "client %s: %d job(s), %.2fs service, cache %d hits / %d misses@."
              cv.Serve_proto.cv_client cv.Serve_proto.cv_jobs cv.Serve_proto.cv_service_s
              cv.Serve_proto.cv_cache_hits cv.Serve_proto.cv_cache_misses)
          clients
    | Ok (Serve_proto.Error_msg m) ->
        Fmt.epr "dfm_resynth: status: %s@." m;
        exit 1
    | Ok _ ->
        Fmt.epr "dfm_resynth: status: unexpected response@.";
        exit 2
  in
  Cmd.v (Cmd.info "status" ~doc:"Show the jobs and per-client accounts of a campaign service.")
    Term.(const run $ socket_arg)

let cancel_cmd =
  let job = Arg.(required & pos 0 (some string) None & info [] ~docv:"JOB" ~doc:"Job id.") in
  let run socket job =
    with_client socket @@ fun c ->
    match Serve_client.request c (Serve_proto.Cancel job) with
    | Error e ->
        Fmt.epr "dfm_resynth: cancel: %s@." e;
        exit 2
    | Ok Serve_proto.Ok_resp -> Fmt.pr "cancelled %s@." job
    | Ok (Serve_proto.Error_msg m) ->
        Fmt.epr "dfm_resynth: cancel: %s@." m;
        exit 1
    | Ok _ ->
        Fmt.epr "dfm_resynth: cancel: unexpected response@.";
        exit 2
  in
  Cmd.v
    (Cmd.info "cancel"
       ~doc:
         "Cancel a job: a queued job immediately, a running resynthesis at its next \
          design-point boundary (its journal is kept).")
    Term.(const run $ socket_arg $ job)

let drain_cmd =
  let run socket =
    with_client socket @@ fun c ->
    match Serve_client.request c Serve_proto.Drain with
    | Error e ->
        Fmt.epr "dfm_resynth: drain: %s@." e;
        exit 2
    | Ok (Serve_proto.Drained { completed }) ->
        Fmt.pr "drained: %d job(s) completed over the daemon's lifetime@." completed
    | Ok (Serve_proto.Error_msg m) ->
        Fmt.epr "dfm_resynth: drain: %s@." m;
        exit 1
    | Ok _ ->
        Fmt.epr "dfm_resynth: drain: unexpected response@.";
        exit 2
  in
  Cmd.v
    (Cmd.info "drain"
       ~doc:"Finish the queued jobs, refuse new ones, and shut the campaign service down.")
    Term.(const run $ socket_arg)

(* ---- live telemetry: trace --follow, top, flight-dump ---- *)

let telemetry_subscribe c sub =
  match Serve_client.subscribe_telemetry c sub with
  | Ok () -> ()
  | Error e ->
      Fmt.epr "dfm_resynth: telemetry: %s@." e;
      exit 2

let trace_follow_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"Output trace file (Chrome trace-event JSON).")
  in
  let follow =
    Arg.(
      value & flag
      & info [ "follow" ]
          ~doc:
            "Keep streaming until the daemon goes away (default: stop after the first span \
             batch).  The file is atomically rewritten per batch, so it is a valid \
             Perfetto-loadable trace at every instant.")
  in
  let batches =
    Arg.(
      value
      & opt (some int) None
      & info [ "batches" ] ~docv:"N" ~doc:"Stop after $(docv) span batches (test hook).")
  in
  let run socket file follow batches =
    with_client socket @@ fun c ->
    telemetry_subscribe c
      { Serve_proto.t_spans = true; t_metrics = false; t_families = []; t_interval_ms = None };
    (* Streamed spans are "X" complete events: each batch appends finished
       spans, so the accumulated array is always a well-formed trace. *)
    let events = ref [] in
    let write () =
      Dfm_obs.Export.write_atomic file
        ("{\"traceEvents\":[" ^ String.concat ",\n" (List.rev !events) ^ "]}\n")
    in
    write ();
    let stop = match batches with Some n -> n | None -> if follow then max_int else 1 in
    let rec go n =
      if n < stop then
        match Serve_client.next_telemetry c with
        | Error e -> Fmt.epr "trace: stream ended: %s@." e
        | Ok ("spans", data) ->
            let lines =
              List.filter (fun s -> s <> "") (String.split_on_char '\n' data)
            in
            events := List.rev_append lines !events;
            write ();
            go (n + 1)
        | Ok _ -> go n
    in
    go 0;
    Fmt.pr "wrote trace %s (%d events)@." file (List.length !events)
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Stream live spans from a campaign service into a Chrome/Perfetto trace file.  \
          With --follow the file tracks the daemon until interrupted and is valid at \
          every instant.")
    Term.(const run $ socket_arg $ file $ follow $ batches)

(* A tolerant reader for the daemon's own Prometheus frames: enough of the
   exposition grammar to aggregate labelled counters per tenant. *)
let prom_samples text =
  let parse_labels s =
    (* comma-separated key=value pairs, values quoted with backslash escapes *)
    let out = ref [] and buf = Buffer.create 16 and key = ref "" in
    let inq = ref false and esc = ref false in
    let flush_pair () =
      if !key <> "" then out := (!key, Buffer.contents buf) :: !out;
      key := "";
      Buffer.clear buf
    in
    String.iter
      (fun ch ->
        if !esc then begin
          Buffer.add_char buf (match ch with 'n' -> '\n' | c -> c);
          esc := false
        end
        else if !inq then
          match ch with
          | '\\' -> esc := true
          | '"' -> inq := false
          | c -> Buffer.add_char buf c
        else
          match ch with
          | '"' -> inq := true
          | '=' ->
              key := Buffer.contents buf;
              Buffer.clear buf
          | ',' -> flush_pair ()
          | ' ' | '\t' -> ()
          | c -> Buffer.add_char buf c)
      s;
    flush_pair ();
    List.rev !out
  in
  let parse_line line =
    if line = "" || line.[0] = '#' then None
    else
      let name_end =
        match (String.index_opt line '{', String.index_opt line ' ') with
        | Some b, Some sp when b < sp -> b
        | _, Some sp -> sp
        | _ -> String.length line
      in
      let name = String.sub line 0 name_end in
      let labels, rest_at =
        if name_end < String.length line && line.[name_end] = '{' then begin
          (* find the closing brace outside quotes *)
          let n = String.length line in
          let rec close i inq esc =
            if i >= n then None
            else if esc then close (i + 1) inq false
            else
              match line.[i] with
              | '\\' when inq -> close (i + 1) inq true
              | '"' -> close (i + 1) (not inq) false
              | '}' when not inq -> Some i
              | _ -> close (i + 1) inq false
          in
          match close (name_end + 1) false false with
          | None -> ([], n)
          | Some cb ->
              (parse_labels (String.sub line (name_end + 1) (cb - name_end - 1)), cb + 1)
        end
        else ([], name_end)
      in
      let v =
        float_of_string_opt
          (String.trim (String.sub line rest_at (String.length line - rest_at)))
      in
      Option.map (fun v -> (name, labels, v)) v
  in
  List.filter_map parse_line (String.split_on_char '\n' text)

type top_row = {
  mutable tr_queries : float;
  mutable tr_conflicts : float;
  mutable tr_hits : float;
  mutable tr_misses : float;
  mutable tr_cert : float;
}

let top_cmd =
  let interval =
    Arg.(
      value & opt int 1000
      & info [ "interval" ] ~docv:"MS" ~doc:"Refresh interval in milliseconds.")
  in
  let count =
    Arg.(
      value
      & opt (some int) None
      & info [ "count" ] ~docv:"N" ~doc:"Exit after $(docv) refreshes (default: forever).")
  in
  let run socket interval count =
    with_client socket @@ fun c ->
    telemetry_subscribe c
      {
        Serve_proto.t_spans = false;
        t_metrics = true;
        t_families = [ "dfm_sat_"; "dfm_atpg_"; "dfm_cache_"; "dfm_cert_"; "dfm_serve_" ];
        t_interval_ms = Some interval;
      };
    let tty = Unix.isatty Unix.stdout in
    let prev = Hashtbl.create 8 in
    let last_t = ref (Unix.gettimeofday ()) in
    let render data =
      let t = Unix.gettimeofday () in
      let dt = Float.max 0.05 (t -. !last_t) in
      last_t := t;
      let rows = Hashtbl.create 8 in
      let row tenant =
        match Hashtbl.find_opt rows tenant with
        | Some r -> r
        | None ->
            let r =
              { tr_queries = 0.; tr_conflicts = 0.; tr_hits = 0.; tr_misses = 0.; tr_cert = 0. }
            in
            Hashtbl.add rows tenant r;
            r
      in
      let qwait_sum = ref 0. and qwait_count = ref 0. in
      List.iter
        (fun (name, labels, v) ->
          (match name with
          | "dfm_serve_queue_wait_ms_sum" -> qwait_sum := v
          | "dfm_serve_queue_wait_ms_count" -> qwait_count := v
          | _ -> ());
          match List.assoc_opt "tenant" labels with
          | None -> ()
          | Some tenant -> (
              let r = row tenant in
              match name with
              | "dfm_atpg_sat_queries_total" -> r.tr_queries <- r.tr_queries +. v
              | "dfm_sat_conflicts_total" -> r.tr_conflicts <- r.tr_conflicts +. v
              | "dfm_cache_hits_total" -> r.tr_hits <- r.tr_hits +. v
              | "dfm_cache_misses_total" -> r.tr_misses <- r.tr_misses +. v
              | "dfm_cert_checked_total" -> r.tr_cert <- r.tr_cert +. v
              | _ -> ()))
        (prom_samples data);
      if tty then Fmt.pr "\027[H\027[2J";
      Fmt.pr "dfm top — avg queue wait %.1f ms over %.0f job(s)@."
        (if !qwait_count > 0. then !qwait_sum /. !qwait_count else 0.)
        !qwait_count;
      Fmt.pr "%-16s %10s %12s %10s %10s@." "tenant" "sat q/s" "conflicts" "cache hit%" "certified";
      let tenants = Hashtbl.fold (fun k _ acc -> k :: acc) rows [] in
      List.iter
        (fun tenant ->
          let r = Hashtbl.find rows tenant in
          let prev_q =
            match Hashtbl.find_opt prev tenant with Some q -> q | None -> r.tr_queries
          in
          Hashtbl.replace prev tenant r.tr_queries;
          let lookups = r.tr_hits +. r.tr_misses in
          Fmt.pr "%-16s %10.1f %12.0f %10.1f %10.0f@." tenant
            ((r.tr_queries -. prev_q) /. dt)
            r.tr_conflicts
            (if lookups > 0. then 100. *. r.tr_hits /. lookups else 0.)
            r.tr_cert)
        (List.sort compare tenants);
      Fmt.pr "%!"
    in
    let stop = match count with Some n -> n | None -> max_int in
    let rec go n =
      if n < stop then
        match Serve_client.next_telemetry c with
        | Error e -> Fmt.epr "top: stream ended: %s@." e
        | Ok ("metrics", data) ->
            render data;
            go (n + 1)
        | Ok _ -> go n
    in
    go 0
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live per-tenant view of a campaign service: SAT query rate, conflicts, cache hit \
          rate and certified checks, refreshed from the daemon's telemetry stream.")
    Term.(const run $ socket_arg $ interval $ count)

let flight_dump_cmd =
  let run socket =
    with_client socket @@ fun c ->
    match Serve_client.request c Serve_proto.Dump with
    | Error e ->
        Fmt.epr "dfm_resynth: flight-dump: %s@." e;
        exit 2
    | Ok (Serve_proto.Dumped { trace; text }) ->
        Fmt.pr "flight recorder dumped:@.  %s@.  %s@." trace text
    | Ok (Serve_proto.Error_msg m) ->
        Fmt.epr "dfm_resynth: flight-dump: %s@." m;
        exit 1
    | Ok _ ->
        Fmt.epr "dfm_resynth: flight-dump: unexpected response@.";
        exit 2
  in
  Cmd.v
    (Cmd.info "flight-dump"
       ~doc:
         "Ask a running campaign service to write a flight-recorder dump (recent spans, \
          logs and metrics) under its state directory — same artifacts a crash or SIGUSR2 \
          produces.")
    Term.(const run $ socket_arg)

let () =
  let info =
    Cmd.info "dfm_resynth"
      ~doc:"Resynthesis for avoiding undetectable DFM faults (DATE 2019 reproduction)."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; cells_cmd; analyze_cmd; resynth_cmd; lint_cmd; ablate_cmd; paths_cmd;
            verilog_cmd; dump_cmd; serve_cmd; submit_cmd; await_cmd; status_cmd; cancel_cmd;
            drain_cmd; trace_follow_cmd; top_cmd; flight_dump_cmd ]))

(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section and registers one Bechamel micro-benchmark per
   experiment.

   Sections (select with REPRO_SECTIONS=table1,table2,fig2,ablation,micro):
     table1   — Table I, clustering of undetectable DFM faults
     table2   — Table II, the full two-phase resynthesis on all 12 blocks
     fig2     — Fig. 2, the per-step cluster-breaking trajectory
     ablation — Section IV restricted-library experiment
     choices  — ablations of this reproduction's own design choices
     scaling  — multicore fault classification at 1/2/4/8 domains
     cache    — resynthesis with/without the incremental verdict cache
     lint     — structural findings + static-untestability pre-SAT filter
     certify  — certificate-checking overhead (proof bytes, check p50/p99)
     micro    — Bechamel timings of the per-experiment kernels

   REPRO_SCALE scales the generated blocks (default 1.0);
   REPRO_CIRCUITS restricts table2 to a comma-separated subset;
   REPRO_SCALING_JSON writes the scaling section's JSON record to a file;
   REPRO_SAT_JSON writes the oneshot-vs-incremental SAT comparison
   (conflicts and wall time per mode) as JSON to a file;
   REPRO_LINT_JSON writes the lint section's JSON record to a file;
   REPRO_SERVE_JSON writes the serve section's JSON record (daemon
   jobs/sec plus request and queue-wait latency at 1 vs 3 tenants);
   REPRO_CERT_JSON writes the certify section's JSON record (checks,
   proof bytes, check-latency percentiles, certified-run slowdown);
   REPRO_OBS_JSON writes the final observability metrics snapshot (every
   counter, gauge and histogram of the run) as JSON to a file.

   --quick [--out PATH] ignores REPRO_SECTIONS and instead runs the
   engine sections (scaling, cache, lint, sat, serve, certify) plus a
   telemetry-overhead section at a small fixed scale, merging every
   section record into ONE JSON file (default BENCH_BASELINE.json; the
   committed copy at the repo root is the reference baseline). *)

module Design = Dfm_core.Design
module Resynth = Dfm_core.Resynth
module Report = Dfm_core.Report
module Circuits = Dfm_circuits.Circuits

let sections =
  match Sys.getenv_opt "REPRO_SECTIONS" with
  | None ->
      [ "table1"; "table2"; "fig2"; "ablation"; "choices"; "scaling"; "cache"; "lint";
        "serve"; "certify"; "micro" ]
  | Some s -> String.split_on_char ',' s |> List.map String.trim

let wants s = List.mem s sections

(* --quick: pin the scale and circuit subset BEFORE [circuits_subset] and
   the lazily-built design caches read them, so the committed baseline is
   always produced from the same small fixed workload. *)
let quick = Array.exists (( = ) "--quick") Sys.argv

let quick_out =
  let rec find i =
    if i >= Array.length Sys.argv - 1 then "BENCH_BASELINE.json"
    else if Sys.argv.(i) = "--out" then Sys.argv.(i + 1)
    else find (i + 1)
  in
  find 1

let () =
  if quick then begin
    Unix.putenv "REPRO_SCALE" "0.2";
    Unix.putenv "REPRO_CIRCUITS" "wb_conmax,tv80"
  end

let circuits_subset =
  match Sys.getenv_opt "REPRO_CIRCUITS" with
  | None -> Circuits.names
  | Some s ->
      String.split_on_char ',' s |> List.map String.trim
      |> List.filter (fun n -> List.mem n Circuits.names)

let line () = print_endline (String.make 100 '-')

let header title =
  print_newline ();
  line ();
  Printf.printf "== %s ==\n" title;
  line ()

(* Designs are shared between sections; memoized per circuit. *)
let design_cache : (string, Design.t) Hashtbl.t = Hashtbl.create 16
let netlist_cache : (string, Dfm_netlist.Netlist.t) Hashtbl.t = Hashtbl.create 16

let netlist_of name =
  match Hashtbl.find_opt netlist_cache name with
  | Some nl -> nl
  | None ->
      let nl = Circuits.build name in
      Hashtbl.add netlist_cache name nl;
      nl

let design_of name =
  match Hashtbl.find_opt design_cache name with
  | Some d -> d
  | None ->
      let d = Design.implement (netlist_of name) in
      Hashtbl.add design_cache name d;
      d

(* ------------------------------------------------------------------ *)
(* Table I                                                              *)
(* ------------------------------------------------------------------ *)

let run_table1 () =
  header "Table I: clustered undetectable DFM faults (original designs)";
  Format.printf "%a  (measured)@." Report.pp_table1_header ();
  let rows =
    List.map
      (fun name ->
        let r = Report.table1_row ~name (design_of name) in
        Format.printf "%a@." Report.pp_table1_row r;
        r)
      Circuits.table1_names
  in
  print_newline ();
  Printf.printf "%-11s %7s %7s %6s %6s %6s %6s %6s %9s  (paper)\n" "Circuit" "F_In" "F_Ex"
    "U_In" "U_Ex" "G_U" "Gmax" "Smax" "%Smax_U";
  List.iter
    (fun (c, fi, fe, ui, ue, gu, gm, sm, pct) ->
      Printf.printf "%-11s %7d %7d %6d %6d %6d %6d %6d %8.2f%%\n" c fi fe ui ue gu gm sm pct)
    Paper_data.table1;
  print_newline ();
  let all p = List.for_all p rows in
  Printf.printf "shape: undetectable faults are mostly internal (U_In > U_Ex): %b (paper: true)\n"
    (all (fun r -> r.Report.u_in > r.Report.u_ex));
  Printf.printf
    "note: F_Ex/F_In measured %s (paper 2.2..4.9: a commercial extractor on full detailed\n"
    (String.concat " "
       (List.map
          (fun r -> Printf.sprintf "%.2f" (float_of_int r.Report.f_ex /. float_of_int (max 1 r.Report.f_in)))
          rows));
  Printf.printf "      routing sees far more interconnect geometry than our 3-layer global router)\n";
  Printf.printf
    "shape: a single cluster holds a large share of U (paper %%Smax_U 27..66%%): measured %s\n"
    (String.concat " " (List.map (fun r -> Printf.sprintf "%.0f%%" r.Report.pct_smax_u) rows))

(* ------------------------------------------------------------------ *)
(* Table II                                                             *)
(* ------------------------------------------------------------------ *)

let resynth_cache : (string, Resynth.result) Hashtbl.t = Hashtbl.create 16

let resynth_of name =
  match Hashtbl.find_opt resynth_cache name with
  | Some r -> r
  | None ->
      let r = Resynth.run (design_of name) in
      Hashtbl.add resynth_cache name r;
      r

let run_table2 () =
  header "Table II: two-phase resynthesis under design constraints (q swept 0..5)";
  Format.printf "%a@." Report.pp_table2_header ();
  let rows =
    List.map
      (fun name ->
        let r = resynth_of name in
        let orig, resyn = Report.table2_rows ~name r in
        Format.printf "%a@." Report.pp_table2_row orig;
        Format.printf "%a@." Report.pp_table2_row resyn;
        (orig, resyn))
      circuits_subset
  in
  let origs = List.map fst rows and resyns = List.map snd rows in
  Format.printf "%a@." Report.pp_table2_row
    { (Report.average_rows origs) with Report.max_inc = "orig" };
  Format.printf "%a@." Report.pp_table2_row
    { (Report.average_rows resyns) with Report.max_inc = "resyn" };
  print_newline ();
  Printf.printf "paper Table II (same columns, authors' testbed):\n";
  List.iter
    (fun (p : Paper_data.t2) ->
      if List.mem p.Paper_data.circuit circuits_subset then begin
        Printf.printf "%-11s %5s %7d %6d %6.2f%% %5d %6d %8.2f%%\n" p.Paper_data.circuit "orig"
          p.Paper_data.f0 p.Paper_data.u0 p.Paper_data.cov0 p.Paper_data.t0 p.Paper_data.smax0
          p.Paper_data.pct_smax_all0;
        Printf.printf "%-11s %5s %7d %6d %6.2f%% %5d %6d %8.2f%%  delay %.2f%% power %.2f%% rtime %.2f\n"
          p.Paper_data.circuit p.Paper_data.q p.Paper_data.f1 p.Paper_data.u1 p.Paper_data.cov1
          p.Paper_data.t1 p.Paper_data.smax1 p.Paper_data.pct_smax_all1 p.Paper_data.delay1
          p.Paper_data.power1 p.Paper_data.rtime1
      end)
    Paper_data.table2;
  print_newline ();
  let ratio a b = if b = 0 then 0.0 else float_of_int a /. float_of_int b in
  let u_reduction =
    List.map2
      (fun (o : Report.table2_row) (r : Report.table2_row) ->
        ratio o.Report.u (max 1 r.Report.u))
      origs resyns
  in
  Printf.printf
    "shape: U reduced by about an order of magnitude (paper avg 9.6x): measured avg %.1fx\n"
    (List.fold_left ( +. ) 0.0 u_reduction /. float_of_int (max 1 (List.length u_reduction)));
  Printf.printf
    "shape: %%Smax_all below p1 = 1%% for most circuits (paper: 11 of 12): measured %d of %d\n"
    (List.length (List.filter (fun (r : Report.table2_row) -> r.Report.pct_smax_all < 1.0) resyns))
    (List.length resyns);
  Printf.printf "shape: delay and power within the +5%% budget everywhere: %b (paper: true)\n"
    (List.for_all
       (fun (r : Report.table2_row) ->
         r.Report.delay_rel <= 1.05 +. 1e-9 && r.Report.power_rel <= 1.05 +. 1e-9)
       resyns);
  let tsum rows =
    List.fold_left (fun a (r : Report.table2_row) -> a +. float_of_int r.Report.tests) 0.0 rows
  in
  Printf.printf "shape: test-set size T changes little (paper avg +2%%): measured avg %+.0f%%\n"
    (100.0 *. ((tsum resyns /. Float.max 1.0 (tsum origs)) -. 1.0));
  let all_eq =
    List.for_all
      (fun name ->
        Dfm_atpg.Equiv_sat.check (netlist_of name) (resynth_of name).Resynth.final.Design.netlist
        = Dfm_atpg.Equiv_sat.Equivalent)
      circuits_subset
  in
  Printf.printf "check: every resynthesized block is SAT-proven equivalent: %b\n" all_eq;
  (* The paper: "the layouts for all the resynthesized circuits are achieved
     within the original floorplans without design rule violations". *)
  let all_drc =
    List.for_all
      (fun name ->
        Dfm_layout.Drc.clean
          (Dfm_layout.Drc.check (resynth_of name).Resynth.final.Design.routing))
      circuits_subset
  in
  Printf.printf "check: every resynthesized layout is DRC-clean in the original floorplan: %b\n"
    all_drc;
  (* The motivation quantified: expected escape DPPM from the uncovered
     sites, and tester time from the compacted test set over the scan
     chain. *)
  print_newline ();
  Printf.printf "impact (motivation of Section I): escapes and tester time, original -> resynthesized\n";
  List.iter2
    (fun name (orig, resyn) ->
      let r = resynth_of name in
      let d0 = r.Resynth.initial and d1 = r.Resynth.final in
      let dppm0 = Dfm_core.Dppm.escapes_dppm d0 and dppm1 = Dfm_core.Dppm.escapes_dppm d1 in
      let chain0 = Dfm_layout.Scan.stitch d0.Design.placement in
      let chain1 = Dfm_layout.Scan.stitch d1.Design.placement in
      let t0 = Dfm_layout.Scan.test_time_ms chain0 ~patterns:orig.Report.tests ~shift_mhz:25.0 in
      let t1 = Dfm_layout.Scan.test_time_ms chain1 ~patterns:resyn.Report.tests ~shift_mhz:25.0 in
      Printf.printf
        "  %-11s escapes %7.1f -> %6.1f dppm (%4.1fx)   tester time %6.3f -> %6.3f ms\n" name
        dppm0 dppm1
        (dppm0 /. Float.max 1e-9 dppm1)
        t0 t1)
    circuits_subset rows

(* ------------------------------------------------------------------ *)
(* Fig. 2                                                               *)
(* ------------------------------------------------------------------ *)

let run_fig2 () =
  header "Fig. 2: phase 1 breaks the largest clusters, phase 2 cleans up (trajectory)";
  let name = List.hd circuits_subset in
  let r = resynth_of name in
  Printf.printf "circuit %s: accepted-step series\n" name;
  List.iter
    (fun (p : Report.fig2_point) ->
      Printf.printf "  step %2d  q=%d  phase %d   U=%5d   |Smax|=%5d%s\n" p.Report.step
        p.Report.q p.Report.phase p.Report.u p.Report.smax_size
        (if p.Report.step = 0 then "   (original)" else ""))
    (Report.fig2_series r);
  let series = Report.fig2_series r in
  let count ph = List.length (List.filter (fun p -> p.Report.phase = ph && p.Report.step > 0) series) in
  Printf.printf "shape: phase-1 accepted steps %d (cluster-directed), phase-2 accepted steps %d\n"
    (count 1) (count 2);
  match (series, List.rev series) with
  | first :: _, last :: _ ->
      Printf.printf "  |Smax|: %d -> %d,  U: %d -> %d\n" first.Report.smax_size
        last.Report.smax_size first.Report.u last.Report.u
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Ablation                                                             *)
(* ------------------------------------------------------------------ *)

let run_ablation () =
  header "Section IV ablation: globally removing the 7 largest cells breaks the constraints";
  List.iter
    (fun (name, pd, pp) ->
      let row = Report.ablation ~name (netlist_of name) in
      Printf.printf "%-10s removed: %s\n" name (String.concat " " row.Report.removed);
      if row.Report.fits then begin
        Printf.printf
          "  measured: delay %.1f%%, power %.1f%% of original   (paper: delay %.0f%%, power %.0f%%)\n"
          (100.0 *. row.Report.delay_rel)
          (100.0 *. row.Report.power_rel)
          pd pp;
        Printf.printf "  shape: +5%% budget broken by the blunt restriction: %b (paper: true)\n"
          (row.Report.delay_rel > 1.05 || row.Report.power_rel > 1.05)
      end
      else
        Printf.printf
          "  measured: layout does NOT fit the original floorplan (area budget broken outright; paper saw delay %.0f%%, power %.0f%%)\n"
          pd pp)
    Paper_data.ablation

(* ------------------------------------------------------------------ *)
(* Design-choice ablations (DESIGN.md §5)                               *)
(* ------------------------------------------------------------------ *)

let run_choices () =
  header "Design-choice ablations: what each Synthesize() ingredient contributes";
  let name = "sparc_spu" in
  let d0 = design_of name in
  let m0 = Design.metrics d0 in
  Printf.printf "circuit %s: original U=%d |Smax|=%d
" name m0.Design.u m0.Design.s_max;
  let variant label ?sweep ?context_levels () =
    let t0 = Unix.gettimeofday () in
    let r = Resynth.run ?sweep ?context_levels d0 in
    let m = Design.metrics r.Resynth.final in
    Printf.printf "  %-34s U=%4d  |Smax|=%4d  delay %6.1f%%  power %6.1f%%  (%.0fs)
" label
      m.Design.u m.Design.s_max
      (100.0 *. m.Design.delay /. m0.Design.delay)
      (100.0 *. m.Design.power /. m0.Design.power)
      (Unix.gettimeofday () -. t0)
  in
  variant "full procedure (defaults)" ();
  variant "no SAT sweeping in Synthesize()" ~sweep:false ();
  variant "no fanin context (C_sub = G_max only)" ~context_levels:0 ();
  variant "1 level of fanin context" ~context_levels:1 ();
  Printf.printf
    "expected shape: without sweeping or context the procedure can only swap cell types,
";
  Printf.printf
    "so U falls far less — the paper's commercial Synthesize() gets both for free.
"

(* ------------------------------------------------------------------ *)
(* Oneshot vs incremental SAT core, shared by scaling and cache         *)
(* ------------------------------------------------------------------ *)

type sat_mode_row = {
  sm_name : string;
  sm_queries : int;
  sm_t_one : float;  (* classify wall seconds, oneshot *)
  sm_t_inc : float;  (* classify wall seconds, incremental *)
  sm_k_one : int;    (* solver conflicts, oneshot *)
  sm_k_inc : int;    (* solver conflicts, incremental *)
  sm_d_one : int;    (* solver decisions, oneshot *)
  sm_d_inc : int;    (* solver decisions, incremental *)
  sm_p_one : int;    (* propagations, oneshot *)
  sm_p_inc : int;    (* propagations, incremental *)
  sm_identical : bool;
}

let sat_mode_memo : (string, sat_mode_row) Hashtbl.t = Hashtbl.create 4

(* Classify the full fault list once per mode at jobs=1 and delta the
   process-wide solver totals around each run.  The random-simulation
   prefilter inside [classify] is mode-independent, so the wall-clock
   difference between the two rows is pure SAT work. *)
let sat_mode_row name =
  match Hashtbl.find_opt sat_mode_memo name with
  | Some r -> r
  | None ->
      let d = design_of name in
      let nl = d.Design.netlist in
      let faults = d.Design.fault_list.Dfm_guidelines.Translate.faults in
      let measure mode =
        let c0, d0, p0 = Dfm_sat.Solver.totals () in
        let t0 = Dfm_atpg.Atpg.sat_seconds () in
        let cls = Dfm_atpg.Atpg.classify ~jobs:1 ~sat_mode:mode nl faults in
        let t = Dfm_atpg.Atpg.sat_seconds () -. t0 in
        let c1, d1, p1 = Dfm_sat.Solver.totals () in
        (cls, t, c1 - c0, d1 - d0, p1 - p0)
      in
      let one, t_one, k_one, d_one, p_one = measure Dfm_atpg.Atpg.Oneshot in
      let inc, t_inc, k_inc, d_inc, p_inc = measure Dfm_atpg.Atpg.Incremental in
      let row =
        {
          sm_name = name;
          sm_queries = one.Dfm_atpg.Atpg.counts.Dfm_atpg.Atpg.sat_queries;
          sm_t_one = t_one;
          sm_t_inc = t_inc;
          sm_k_one = k_one;
          sm_k_inc = k_inc;
          sm_d_one = d_one;
          sm_d_inc = d_inc;
          sm_p_one = p_one;
          sm_p_inc = p_inc;
          sm_identical = one.Dfm_atpg.Atpg.status = inc.Dfm_atpg.Atpg.status;
        }
      in
      Hashtbl.add sat_mode_memo name row;
      row

(* The redundancy-heavy pair the acceptance targets; fall back to the
   subset's head so REPRO_CIRCUITS keeps working. *)
let sat_mode_picks () =
  match List.filter (fun n -> List.mem n circuits_subset) [ "wb_conmax"; "tv80" ] with
  | _ :: _ as l -> l
  | [] -> [ List.hd circuits_subset ]

let report_sat_modes () =
  Printf.printf "SAT core: oneshot vs incremental on the same fault set (jobs=1)\n";
  List.iter
    (fun name ->
      let r = sat_mode_row name in
      let per t = 1e3 *. t /. float_of_int (max 1 r.sm_queries) in
      Printf.printf
        "  %-11s %5d queries   conflicts %7d -> %6d (%5.1fx)   per-fault SAT time %7.3f -> %7.3f ms (%4.1fx)   bit-identical %b\n"
        name r.sm_queries r.sm_k_one r.sm_k_inc
        (float_of_int r.sm_k_one /. Float.max 1.0 (float_of_int r.sm_k_inc))
        (per r.sm_t_one) (per r.sm_t_inc)
        (r.sm_t_one /. Float.max 1e-9 r.sm_t_inc)
        r.sm_identical;
      Printf.printf
        "  %-11s %19s decisions %7d -> %7d          propagations %9d -> %9d\n" ""
        "" r.sm_d_one r.sm_d_inc r.sm_p_one r.sm_p_inc)
    (sat_mode_picks ())

let sat_modes_json () =
  Printf.sprintf "{\"section\":\"sat\",\"results\":[%s]}"
    (String.concat ","
       (List.map
          (fun name ->
            let r = sat_mode_row name in
            Printf.sprintf
              "{\"circuit\":\"%s\",\"sat_queries\":%d,\
               \"oneshot\":{\"seconds\":%.6f,\"conflicts\":%d},\
               \"incremental\":{\"seconds\":%.6f,\"conflicts\":%d},\
               \"conflicts_ratio\":%.3f,\"time_ratio\":%.3f,\"identical\":%b}"
              name r.sm_queries r.sm_t_one r.sm_k_one r.sm_t_inc r.sm_k_inc
              (float_of_int r.sm_k_one /. Float.max 1.0 (float_of_int r.sm_k_inc))
              (r.sm_t_one /. Float.max 1e-9 r.sm_t_inc)
              r.sm_identical)
          (sat_mode_picks ())))

(* ------------------------------------------------------------------ *)
(* Scaling: the multicore fault-classification engine                   *)
(* ------------------------------------------------------------------ *)

let run_scaling () =
  header "Scaling: sharded fault classification at 1/2/4/8 domains (largest block)";
  (* Largest block of the selected subset — the campaign the resynthesis
     loop repays most for speeding up. *)
  let name =
    List.fold_left
      (fun best n ->
        if Dfm_netlist.Netlist.num_gates (netlist_of n)
           > Dfm_netlist.Netlist.num_gates (netlist_of best)
        then n
        else best)
      (List.hd circuits_subset) circuits_subset
  in
  let d = design_of name in
  let nl = d.Design.netlist in
  let faults = d.Design.fault_list.Dfm_guidelines.Translate.faults in
  Printf.printf "circuit %s: %d gates, %d faults, %d core(s) available\n" name
    (Dfm_netlist.Netlist.num_gates nl)
    (Array.length faults)
    (Domain.recommended_domain_count ());
  let time_classify jobs =
    let t0 = Unix.gettimeofday () in
    let cls = Dfm_atpg.Atpg.classify ~jobs nl faults in
    (Unix.gettimeofday () -. t0, cls)
  in
  let t1, reference = time_classify 1 in
  let rows =
    List.map
      (fun jobs ->
        let t, cls = if jobs = 1 then (t1, reference) else time_classify jobs in
        let identical = cls.Dfm_atpg.Atpg.status = reference.Dfm_atpg.Atpg.status in
        Printf.printf "  jobs=%d  %8.3f s   speedup %5.2fx   bit-identical %b\n" jobs t
          (t1 /. Float.max 1e-9 t) identical;
        (jobs, t, identical))
      [ 1; 2; 4; 8 ]
  in
  let json =
    Printf.sprintf
      "{\"section\":\"scaling\",\"circuit\":\"%s\",\"gates\":%d,\"faults\":%d,\
       \"cores\":%d,\"results\":[%s]}"
      name
      (Dfm_netlist.Netlist.num_gates nl)
      (Array.length faults)
      (Domain.recommended_domain_count ())
      (String.concat ","
         (List.map
            (fun (jobs, t, identical) ->
              Printf.sprintf
                "{\"jobs\":%d,\"seconds\":%.6f,\"speedup\":%.3f,\"identical\":%b}" jobs t
                (t1 /. Float.max 1e-9 t) identical)
            rows))
  in
  Printf.printf "scaling-json: %s\n" json;
  (match Sys.getenv_opt "REPRO_SCALING_JSON" with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc (json ^ "\n");
      close_out oc;
      Printf.printf "wrote %s\n" path);
  print_newline ();
  report_sat_modes ();
  json

(* ------------------------------------------------------------------ *)
(* Cache: the incremental verdict cache across the resynthesis loop     *)
(* ------------------------------------------------------------------ *)

let run_cache () =
  header "Cache: full resynthesis with and without the incremental verdict cache";
  (* The two largest blocks of the selected subset: the deeper the q sweep
     and the bigger the fault list, the more repeated cones the cache can
     serve.  Both runs are fresh (no [resynth_of] memo) so the wall-clock
     comparison is honest. *)
  let picks =
    List.sort
      (fun a b ->
        compare
          (Dfm_netlist.Netlist.num_gates (netlist_of b))
          (Dfm_netlist.Netlist.num_gates (netlist_of a)))
      circuits_subset
    |> List.filteri (fun i _ -> i < 2)
  in
  let trace_shape (r : Resynth.result) =
    List.map
      (fun (e : Resynth.event) ->
        (e.Resynth.ev_q, e.Resynth.ev_phase, e.Resynth.ev_action, e.Resynth.ev_u,
         e.Resynth.ev_smax))
      r.Resynth.trace
  in
  let rows =
    List.map
      (fun name ->
        let d = design_of name in
        let timed f =
          let t0 = Unix.gettimeofday () in
          let r = f () in
          (Unix.gettimeofday () -. t0, r)
        in
        let t_plain, plain = timed (fun () -> Resynth.run d) in
        let cache = Dfm_incr.Cache.create () in
        let t_cached, cached = timed (fun () -> Resynth.run ~cache d) in
        (* the invariant, at full scale: the cache must not steer the loop *)
        let identical =
          trace_shape plain = trace_shape cached
          && Design.metrics plain.Resynth.final = Design.metrics cached.Resynth.final
        in
        let saved = plain.Resynth.sat_queries - cached.Resynth.sat_queries in
        let e = Report.effort cached in
        Printf.printf
          "  %-11s SAT queries %6d -> %5d (%5.1fx)   hit rate %5.1f%%   %7.1fs -> %6.1fs (%4.2fx)   identical %b\n"
          name plain.Resynth.sat_queries cached.Resynth.sat_queries
          (float_of_int plain.Resynth.sat_queries
          /. Float.max 1.0 (float_of_int cached.Resynth.sat_queries))
          (100.0 *. e.Report.ef_hit_rate) t_plain t_cached
          (t_plain /. Float.max 1e-9 t_cached)
          identical;
        (name, plain.Resynth.sat_queries, cached.Resynth.sat_queries, saved, e,
         t_plain /. Float.max 1e-9 t_cached, identical))
      picks
  in
  let json =
    Printf.sprintf "{\"section\":\"cache\",\"results\":[%s]}"
      (String.concat ","
         (List.map
            (fun (name, q0, q1, saved, e, speedup, identical) ->
              Printf.sprintf
                "{\"circuit\":\"%s\",\"sat_queries_uncached\":%d,\"sat_queries_cached\":%d,\
                 \"sat_queries_saved\":%d,\"hit_rate\":%.4f,\"conflicts\":%d,\
                 \"decisions\":%d,\"propagations\":%d,\"speedup\":%.3f,\
                 \"identical\":%b}"
                name q0 q1 saved e.Report.ef_hit_rate e.Report.ef_conflicts
                e.Report.ef_decisions e.Report.ef_propagations speedup identical)
            rows))
  in
  Printf.printf "cache-json: %s\n" json;
  (match Sys.getenv_opt "REPRO_CACHE_JSON" with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc (json ^ "\n");
      close_out oc;
      Printf.printf "wrote %s\n" path);
  print_newline ();
  report_sat_modes ();
  json

(* ------------------------------------------------------------------ *)
(* Lint: structural findings and the static-untestability pre-SAT filter *)
(* ------------------------------------------------------------------ *)

let run_lint () =
  header "Lint: structural findings and faults proven Undetectable before SAT";
  (* The redundancy-heavy blocks repay the filter most: their one-hot
     select/grant networks make many UDFM activation minterms unreachable,
     which the small-support dataflow analysis proves without a solver.
     Fall back to whatever the subset offers so REPRO_CIRCUITS still works. *)
  let preferred = [ "wb_conmax"; "tv80"; "sparc_spu" ] in
  let picks =
    match List.filter (fun n -> List.mem n circuits_subset) preferred with
    | _ :: _ :: _ as l -> l
    | _ -> List.filteri (fun i _ -> i < 3) circuits_subset
  in
  let module Lint = Dfm_lint.Lint in
  let module Dataflow = Dfm_lint.Dataflow in
  let rows =
    List.map
      (fun name ->
        let d = design_of name in
        let nl = d.Design.netlist in
        let faults = d.Design.fault_list.Dfm_guidelines.Translate.faults in
        let report = Lint.check nl in
        let findings = List.length report.Lint.findings in
        let df = Dataflow.analyze nl in
        let prove = Dataflow.prove_undetectable df in
        let filtered =
          Array.fold_left (fun a f -> if prove f then a + 1 else a) 0 faults
        in
        let plain = Dfm_atpg.Atpg.classify nl faults in
        let screened = Dfm_atpg.Atpg.classify ~static_filter:prove nl faults in
        let identical = plain.Dfm_atpg.Atpg.status = screened.Dfm_atpg.Atpg.status in
        let q0 = plain.Dfm_atpg.Atpg.counts.Dfm_atpg.Atpg.sat_queries in
        let q1 = screened.Dfm_atpg.Atpg.counts.Dfm_atpg.Atpg.sat_queries in
        Printf.printf
          "  %-11s findings %3d   filtered %4d / %5d faults   SAT queries %6d -> %6d (saved %d)   bit-identical %b\n"
          name findings filtered (Array.length faults) q0 q1 (q0 - q1) identical;
        (name, findings, filtered, Array.length faults, q0, q1, identical))
      picks
  in
  Printf.printf
    "shape: the filter proves >0 faults on every redundancy-heavy block with fewer SAT queries: %b\n"
    (List.for_all (fun (_, _, f, _, q0, q1, _) -> f > 0 && q1 < q0) rows);
  let json =
    Printf.sprintf "{\"section\":\"lint\",\"results\":[%s]}"
      (String.concat ","
         (List.map
            (fun (name, findings, filtered, total, q0, q1, identical) ->
              Printf.sprintf
                "{\"circuit\":\"%s\",\"lint_findings\":%d,\"faults\":%d,\
                 \"statically_filtered\":%d,\"sat_queries_unfiltered\":%d,\
                 \"sat_queries_filtered\":%d,\"sat_queries_saved\":%d,\
                 \"identical\":%b}"
                name findings total filtered q0 q1 (q0 - q1) identical)
            rows))
  in
  Printf.printf "lint-json: %s\n" json;
  (match Sys.getenv_opt "REPRO_LINT_JSON" with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc (json ^ "\n");
      close_out oc;
      Printf.printf "wrote %s\n" path);
  json

(* ------------------------------------------------------------------ *)
(* Serve: campaign-service throughput and queue latency                 *)
(* ------------------------------------------------------------------ *)

(* The daemon runs in-process (its network loop in one thread, bench
   clients in others), which keeps the measurement loopback-only AND lets
   the harness read the daemon's own queue-wait histogram straight from
   the shared metrics registry instead of scraping Prometheus text. *)

module Serve_daemon = Dfm_serve.Daemon
module Serve_client = Dfm_serve.Client
module Serve_proto = Dfm_serve.Protocol
module Netlist_io = Dfm_netlist.Netlist_io
module Parallel = Dfm_util.Parallel

(* Nearest-rank percentile over a sorted array. *)
let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(max 0 (min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1)))

let queue_wait_buckets () =
  Dfm_obs.Metrics.snapshot ()
  |> List.find_map (fun m ->
         if m.Dfm_obs.Metrics.name = "dfm_serve_queue_wait_ms" then
           match m.Dfm_obs.Metrics.value with
           | Dfm_obs.Metrics.Histogram { buckets; _ } -> Some buckets
           | _ -> None
         else None)
  |> Option.value ~default:[||]

(* p-th percentile of the queue wait from the cumulative log2 bucket
   counts accumulated between two snapshots (upper bound of the first
   bucket holding the rank; resolution is a factor of two). *)
let bucket_percentile before after p =
  let delta =
    Array.mapi
      (fun i (le, c) ->
        let c0 = if i < Array.length before then snd before.(i) else 0 in
        (le, c - c0))
      after
  in
  let total = Array.fold_left (fun a (_, c) -> max a c) 0 delta in
  if total = 0 then 0.0
  else
    let rank = int_of_float (ceil (p *. float_of_int total)) in
    let rec find i = if snd delta.(i) >= rank then fst delta.(i) else find (i + 1) in
    find 0

let serve_submit sock ~client netlist_text =
  match Serve_client.connect sock with
  | Error e -> failwith ("serve bench: " ^ e)
  | Ok c ->
      Fun.protect
        ~finally:(fun () -> Serve_client.close c)
        (fun () ->
          match
            Serve_client.submit_and_wait c
              Serve_proto.
                {
                  client;
                  kind = Analyze;
                  name = "bench";
                  netlist = netlist_text;
                  limits = { Serve_proto.no_limits with jobs = Some 2 };
                  static_filter = false;
                  sat_mode = None;
                  q_max = None;
                  p1 = None;
                }
          with
          | Ok r when r.Serve_proto.r_outcome = "done" -> ()
          | Ok r -> failwith ("serve bench: job outcome " ^ r.Serve_proto.r_outcome)
          | Error e -> failwith ("serve bench: " ^ e))

let serve_phase sock ~clients ~jobs_per_client netlist_text =
  let lat = Array.make (clients * jobs_per_client) 0.0 in
  let qw0 = queue_wait_buckets () in
  let t0 = Unix.gettimeofday () in
  let threads =
    List.init clients (fun ci ->
        Thread.create
          (fun () ->
            for j = 0 to jobs_per_client - 1 do
              let s = Unix.gettimeofday () in
              serve_submit sock ~client:(Printf.sprintf "tenant%d" ci) netlist_text;
              lat.((ci * jobs_per_client) + j) <- (Unix.gettimeofday () -. s) *. 1000.0
            done)
          ())
  in
  List.iter Thread.join threads;
  let wall = Unix.gettimeofday () -. t0 in
  let qw1 = queue_wait_buckets () in
  Array.sort compare lat;
  let jobs = clients * jobs_per_client in
  ( float_of_int jobs /. wall,
    percentile lat 0.50,
    percentile lat 0.99,
    bucket_percentile qw0 qw1 0.50,
    bucket_percentile qw0 qw1 0.99 )

let run_serve () =
  header "Serve: campaign-service throughput and queue latency, 1 vs 3 tenants";
  let tmp = Filename.temp_file "dfm_serve_bench" "" in
  Sys.remove tmp;
  Sys.mkdir tmp 0o755;
  let sock =
    (* sun_path is ~107 bytes; the system temp dir is short enough *)
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "dfm_bench_%d.sock" (Unix.getpid ()))
  in
  let saved_jobs = Parallel.default_jobs () in
  let ready_m = Mutex.create () and ready_c = Condition.create () in
  let ready = ref false in
  let daemon =
    Thread.create
      (fun () ->
        ignore
          (Serve_daemon.run
             ~on_ready:(fun () ->
               Mutex.lock ready_m;
               ready := true;
               Condition.signal ready_c;
               Mutex.unlock ready_m)
             {
               Serve_daemon.socket_path = sock;
               state_dir = Filename.concat tmp "state";
               jobs = 2;
               certify = false;
             }))
      ()
  in
  Mutex.lock ready_m;
  while not !ready do
    Condition.wait ready_c ready_m
  done;
  Mutex.unlock ready_m;
  let netlist_text = Netlist_io.to_string (Circuits.build ~scale:0.15 "sparc_ffu") in
  (* one cold job populates the shared verdict store; the measured phases
     then exercise scheduling and protocol machinery on a warm cache, so
     1-vs-3-tenant differences are queueing, not SAT variance *)
  serve_submit sock ~client:"warmup" netlist_text;
  let rows =
    List.map
      (fun clients ->
        let jobs_per_client = 12 / clients in
        let jps, p50, p99, q50, q99 =
          serve_phase sock ~clients ~jobs_per_client netlist_text
        in
        Printf.printf
          "  %d tenant(s)  %5.1f jobs/s   request p50 %6.1f ms  p99 %6.1f ms   queue wait p50 %5.0f ms  p99 %5.0f ms\n"
          clients jps p50 p99 q50 q99;
        (clients, clients * jobs_per_client, jps, p50, p99, q50, q99))
      [ 1; 3 ]
  in
  (match Serve_client.connect sock with
  | Ok c ->
      (match Serve_client.request c Serve_proto.Drain with
      | Ok _ | Error _ -> ());
      Serve_client.close c
  | Error e -> Printf.printf "  drain failed: %s\n" e);
  Thread.join daemon;
  Parallel.set_default_jobs saved_jobs;
  let json =
    Printf.sprintf "{\"section\":\"serve\",\"results\":[%s]}"
      (String.concat ","
         (List.map
            (fun (clients, jobs, jps, p50, p99, q50, q99) ->
              Printf.sprintf
                "{\"clients\":%d,\"jobs\":%d,\"jobs_per_s\":%.2f,\
                 \"latency_p50_ms\":%.2f,\"latency_p99_ms\":%.2f,\
                 \"queue_p50_ms\":%.1f,\"queue_p99_ms\":%.1f}"
                clients jobs jps p50 p99 q50 q99)
            rows))
  in
  Printf.printf "serve-json: %s\n" json;
  (match Sys.getenv_opt "REPRO_SERVE_JSON" with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc (json ^ "\n");
      close_out oc;
      Printf.printf "wrote %s\n" path);
  json

(* ------------------------------------------------------------------ *)
(* Certify: overhead of end-to-end certificate checking                 *)
(* ------------------------------------------------------------------ *)

let cert_check_buckets () =
  match Dfm_obs.Metrics.find_value "dfm_cert_check_ns" with
  | Some (Dfm_obs.Metrics.Histogram { buckets; _ }) -> buckets
  | _ -> [||]

let run_certify () =
  header "Certify: independent certificate checking, certified vs plain classification";
  (* Timing histograms are gated off by default; the check-latency
     percentiles need them on for the certified runs. *)
  let was_timing = Dfm_obs.Metrics.timing_enabled () in
  Dfm_obs.Metrics.set_timing_enabled true;
  Fun.protect ~finally:(fun () -> Dfm_obs.Metrics.set_timing_enabled was_timing)
  @@ fun () ->
  let picks = List.filteri (fun i _ -> i < 2) circuits_subset in
  let rows =
    List.map
      (fun name ->
        let d = design_of name in
        let nl = d.Design.netlist in
        let faults = d.Design.fault_list.Dfm_guidelines.Translate.faults in
        let timed f =
          let t0 = Unix.gettimeofday () in
          let r = f () in
          (Unix.gettimeofday () -. t0, r)
        in
        let t_plain, plain = timed (fun () -> Dfm_atpg.Atpg.classify ~jobs:1 nl faults) in
        let c0 = Dfm_sat.Cert.totals () in
        let qw0 = cert_check_buckets () in
        let t_cert, certified =
          timed (fun () -> Dfm_atpg.Atpg.classify ~jobs:1 ~certify:true nl faults)
        in
        let qw1 = cert_check_buckets () in
        let c1 = Dfm_sat.Cert.totals () in
        let identical =
          plain.Dfm_atpg.Atpg.status = certified.Dfm_atpg.Atpg.status
          && plain.Dfm_atpg.Atpg.counts = certified.Dfm_atpg.Atpg.counts
        in
        let checks = c1.Dfm_sat.Cert.checked - c0.Dfm_sat.Cert.checked in
        let failed = c1.Dfm_sat.Cert.failed - c0.Dfm_sat.Cert.failed in
        let proof_bytes = c1.Dfm_sat.Cert.proof_bytes - c0.Dfm_sat.Cert.proof_bytes in
        let p50 = bucket_percentile qw0 qw1 0.50 in
        let p99 = bucket_percentile qw0 qw1 0.99 in
        let slowdown = t_cert /. Float.max 1e-9 t_plain in
        Printf.printf
          "  %-11s %5d checks (%d failed)   proof %7d B   check p50 %7.1f us  p99 %7.1f us   %6.2fs -> %6.2fs (%.2fx)   bit-identical %b\n"
          name checks failed proof_bytes (p50 /. 1e3) (p99 /. 1e3) t_plain t_cert slowdown
          identical;
        (name, Array.length faults, checks, failed, proof_bytes, p50, p99, t_plain, t_cert,
         slowdown, identical))
      picks
  in
  Printf.printf
    "shape: every verdict checked, zero failures, verdicts bit-identical: %b\n"
    (List.for_all
       (fun (_, _, checks, failed, _, _, _, _, _, _, identical) ->
         checks > 0 && failed = 0 && identical)
       rows);
  let json =
    Printf.sprintf "{\"section\":\"certify\",\"results\":[%s]}"
      (String.concat ","
         (List.map
            (fun (name, faults, checks, failed, proof_bytes, p50, p99, tp, tc, slowdown,
                  identical) ->
              Printf.sprintf
                "{\"circuit\":\"%s\",\"faults\":%d,\"checks\":%d,\"failed\":%d,\
                 \"proof_bytes\":%d,\"check_p50_ns\":%.0f,\"check_p99_ns\":%.0f,\
                 \"seconds_plain\":%.6f,\"seconds_certified\":%.6f,\
                 \"slowdown\":%.3f,\"identical\":%b}"
                name faults checks failed proof_bytes p50 p99 tp tc slowdown identical)
            rows))
  in
  Printf.printf "certify-json: %s\n" json;
  (match Sys.getenv_opt "REPRO_CERT_JSON" with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc (json ^ "\n");
      close_out oc;
      Printf.printf "wrote %s\n" path);
  json

(* ------------------------------------------------------------------ *)
(* Telemetry: live-streaming overhead on the campaign service           *)
(* ------------------------------------------------------------------ *)

(* The same job batch against the same in-process daemon, without and then
   with a live telemetry subscriber attached (span batches plus 200 ms
   metrics snapshots).  Telemetry frames are droppable by design, so the
   submitting clients should not feel the stream: the target is <2%
   wall-clock overhead. *)
let run_telemetry () =
  header "Telemetry: streaming overhead, subscriber attached vs not";
  let tmp = Filename.temp_file "dfm_tel_bench" "" in
  Sys.remove tmp;
  Sys.mkdir tmp 0o755;
  let sock =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "dfm_benchtel_%d.sock" (Unix.getpid ()))
  in
  let saved_jobs = Parallel.default_jobs () in
  let ready_m = Mutex.create () and ready_c = Condition.create () in
  let ready = ref false in
  let daemon =
    Thread.create
      (fun () ->
        ignore
          (Serve_daemon.run
             ~on_ready:(fun () ->
               Mutex.lock ready_m;
               ready := true;
               Condition.signal ready_c;
               Mutex.unlock ready_m)
             {
               Serve_daemon.socket_path = sock;
               state_dir = Filename.concat tmp "state";
               jobs = 2;
               certify = false;
             }))
      ()
  in
  Mutex.lock ready_m;
  while not !ready do
    Condition.wait ready_c ready_m
  done;
  Mutex.unlock ready_m;
  let netlist_text = Netlist_io.to_string (Circuits.build ~scale:0.15 "sparc_ffu") in
  serve_submit sock ~client:"warmup" netlist_text;
  let n_jobs = 8 in
  let batch client =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to n_jobs do
      serve_submit sock ~client netlist_text
    done;
    Unix.gettimeofday () -. t0
  in
  let t_plain = batch "plain" in
  let frames = Atomic.make 0 in
  let sub =
    match Serve_client.connect sock with
    | Error e -> failwith ("telemetry bench: " ^ e)
    | Ok c -> c
  in
  (match
     Serve_client.subscribe_telemetry sub
       {
         Serve_proto.t_spans = true;
         t_metrics = true;
         t_families = [ "dfm_" ];
         t_interval_ms = Some 200;
       }
   with
  | Ok () -> ()
  | Error e -> failwith ("telemetry bench: subscribe: " ^ e));
  let reader =
    Thread.create
      (fun () ->
        let rec loop () =
          match Serve_client.next_telemetry sub with
          | Ok _ ->
              Atomic.incr frames;
              loop ()
          | Error _ -> ()  (* the stream dies with the daemon's drain *)
        in
        loop ())
      ()
  in
  let t_stream = batch "stream" in
  (match Serve_client.connect sock with
  | Ok c ->
      (match Serve_client.request c Serve_proto.Drain with Ok _ | Error _ -> ());
      Serve_client.close c
  | Error e -> Printf.printf "  drain failed: %s\n" e);
  Thread.join daemon;
  Thread.join reader;
  Serve_client.close sub;
  Parallel.set_default_jobs saved_jobs;
  let dropped =
    match Dfm_obs.Metrics.find_value "dfm_serve_telemetry_dropped_total" with
    | Some (Dfm_obs.Metrics.Counter n) -> n
    | _ -> 0
  in
  let overhead = 100.0 *. ((t_stream /. Float.max 1e-9 t_plain) -. 1.0) in
  Printf.printf
    "  %d jobs   plain %6.2fs   streaming %6.2fs   overhead %+5.1f%% (target <2%%)   frames %d   dropped %d\n"
    n_jobs t_plain t_stream overhead (Atomic.get frames) dropped;
  let json =
    Printf.sprintf
      "{\"section\":\"telemetry\",\"jobs\":%d,\"seconds_plain\":%.6f,\
       \"seconds_streaming\":%.6f,\"overhead_pct\":%.2f,\"target_pct\":2.0,\
       \"frames\":%d,\"dropped\":%d}"
      n_jobs t_plain t_stream overhead (Atomic.get frames) dropped
  in
  Printf.printf "telemetry-json: %s\n" json;
  (match Sys.getenv_opt "REPRO_TELEMETRY_JSON" with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc (json ^ "\n");
      close_out oc;
      Printf.printf "wrote %s\n" path);
  json

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one kernel per experiment                 *)
(* ------------------------------------------------------------------ *)

let run_micro () =
  header "Bechamel micro-benchmarks (one kernel per experiment)";
  let open Bechamel in
  let d = design_of "sparc_spu" in
  let nl = d.Design.netlist in
  let faults = d.Design.fault_list.Dfm_guidelines.Translate.faults in
  let undetectable fid = Design.undetectable d fid in
  let ls = Dfm_sim.Logic_sim.prepare nl in
  let rng = Dfm_util.Rng.create 1 in
  let lib = nl.Dfm_netlist.Netlist.library in
  let restricted =
    Dfm_netlist.Library.restrict lib
      ~excluded:
        (Dfm_core.Resynth.cells_by_internal_faults lib
        |> List.filteri (fun i _ -> i < 7)
        |> List.map (fun (c : Dfm_netlist.Cell.t) -> c.Dfm_netlist.Cell.name))
  in
  let region =
    d.Design.cluster.Dfm_core.Cluster.gmax
    |> List.filter (fun g ->
           not
             (Dfm_netlist.Netlist.gate nl g).Dfm_netlist.Netlist.cell.Dfm_netlist.Cell.is_seq)
  in
  let tests =
    [
      (* Table I kernel: the Section II cluster partition. *)
      Test.make ~name:"table1/cluster-partition"
        (Staged.stage (fun () -> ignore (Dfm_core.Cluster.compute nl faults ~undetectable)));
      (* Table II kernel: one Synthesize() call on the phase-1 region. *)
      Test.make ~name:"table2/synthesize-region"
        (Staged.stage (fun () ->
             ignore
               (Dfm_synth.Convert.remap_region ~goal:`Area nl ~gates:region
                  ~library:restricted)));
      (* Fig. 2 kernel: a 64-pattern simulation block (the unit of the
         random-pattern classification behind every trajectory point). *)
      Test.make ~name:"fig2/simulate-64-patterns"
        (Staged.stage (fun () ->
             ignore (Dfm_sim.Logic_sim.run ls (Dfm_sim.Logic_sim.random_words ls rng))));
      (* Ablation kernel: building the restricted-library match table. *)
      Test.make ~name:"ablation/build-match-table"
        (Staged.stage (fun () -> ignore (Dfm_synth.Mapper.build_table restricted)));
    ]
  in
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.4) () in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances (Test.make_grouped ~name:"g" [ test ]) in
      let res = Analyze.all ols Toolkit.Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name est ->
          match Analyze.OLS.estimates est with
          | Some [ t ] -> Printf.printf "  %-30s %14.0f ns/run\n" name t
          | Some _ | None -> Printf.printf "  %-30s (no estimate)\n" name)
        res)
    tests

(* ------------------------------------------------------------------ *)

(* One pass over the engine sections at the pinned quick scale, merged
   into a single baseline record.  Section order matters: scaling and
   cache seed the sat-mode memo that [sat_modes_json] then reads. *)
let run_quick () =
  let scaling = run_scaling () in
  let cache = run_cache () in
  let lint = run_lint () in
  let sat = sat_modes_json () in
  let serve = run_serve () in
  let certify = run_certify () in
  let telemetry = run_telemetry () in
  let merged =
    Printf.sprintf
      "{\"suite\":\"dfm-bench-quick\",\"scale\":%.2f,\"circuits\":[%s],\
       \"sections\":{\"scaling\":%s,\"cache\":%s,\"lint\":%s,\"sat\":%s,\
       \"serve\":%s,\"certify\":%s,\"telemetry\":%s}}"
      (Circuits.default_scale ())
      (String.concat "," (List.map (fun n -> "\"" ^ n ^ "\"") circuits_subset))
      scaling cache lint sat serve certify telemetry
  in
  let oc = open_out quick_out in
  output_string oc (merged ^ "\n");
  close_out oc;
  print_newline ();
  Printf.printf "wrote %s\n" quick_out

let () =
  Printf.printf "DFM resynthesis benchmark harness (scale %.2f%s)\n"
    (Circuits.default_scale ())
    (if quick then ", --quick" else "");
  if quick then run_quick ()
  else begin
    if wants "table1" then run_table1 ();
    if wants "table2" then run_table2 ();
    if wants "fig2" then run_fig2 ();
    if wants "ablation" then run_ablation ();
    if wants "choices" then run_choices ();
    if wants "scaling" then ignore (run_scaling () : string);
    if wants "cache" then ignore (run_cache () : string);
    if wants "lint" then ignore (run_lint () : string);
    if wants "serve" then ignore (run_serve () : string);
    if wants "certify" then ignore (run_certify () : string);
    if wants "micro" then run_micro ()
  end;
  (* The oneshot-vs-incremental comparison piggybacks on the scaling and
     cache sections; REPRO_SAT_JSON snapshots it (computing it first if
     neither section ran). *)
  (match Sys.getenv_opt "REPRO_SAT_JSON" with
  | None -> ()
  | Some path ->
      let json = sat_modes_json () in
      Printf.printf "sat-json: %s\n" json;
      let oc = open_out path in
      output_string oc (json ^ "\n");
      close_out oc;
      Printf.printf "wrote %s\n" path);
  (* The process-wide metrics registry has been counting all along (SAT
     effort, cache traffic, pool activity, ...): snapshot it on request so
     a harness run doubles as an observability record. *)
  (match Sys.getenv_opt "REPRO_OBS_JSON" with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc
        (Dfm_obs.Export.metrics_json_string (Dfm_obs.Metrics.snapshot ()) ^ "\n");
      close_out oc;
      Printf.printf "wrote %s\n" path);
  print_newline ();
  print_endline "done."
